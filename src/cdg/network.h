// The constraint network (CN) of paper §1.2-1.4.
//
// One node per word; each node carries q roles (governor, needs, ...).
// Each role holds a *domain*: the set of role values (label-modifiee
// pairs) still considered possible.  Every pair of distinct roles in the
// network is connected by an *arc matrix* recording which role-value
// pairs may legally coexist.
//
// Sizes (paper §1.2): a sentence of n words has R = n*q roles, each with
// up to D = |L|*(n+1) role values; there are O(n^2) arcs each holding an
// O(n^2)-bit matrix, i.e. O(n^4) arc elements in total — the quantity
// the MasPar spreads across its PEs.
//
// Storage: every bit of network state (domains, arc matrices, AC-4
// counters, elimination staging) lives in ONE contiguous NetworkArena
// allocation (cdg/arena.h), mirroring the paper's flat PE-array layout
// (§2.2.1).  Accessors hand out spans/views into that arena, and the
// propagation operations route through the shared cdg/kernels.h layer
// used by every engine.
//
// MasPar fidelity choices mirrored here (§2.2.1):
//   * arc matrices can be built before unary propagation (design
//     decision 1; `Options::prebuild_arcs`), or lazily after;
//   * eliminated role values never shrink a matrix — their rows and
//     columns are zeroed in place (design decision 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cdg/arena.h"
#include "cdg/constraint_eval.h"
#include "cdg/grammar.h"
#include "cdg/kernels.h"
#include "cdg/lexicon.h"
#include "cdg/role_value.h"
#include "util/bitmatrix.h"
#include "util/bitset.h"

namespace parsec::cdg {

/// Work counters for the complexity experiments (bench_pram_complexity,
/// bench_serial_vs_parallel): the serial model's O(k n^4) shape is read
/// off these rather than noisy wall-clock alone.
struct NetworkCounters {
  std::size_t unary_evals = 0;      // actual bytecode-VM dispatches
  std::size_t binary_evals = 0;     // actual bytecode-VM dispatches
  std::size_t eliminations = 0;
  std::size_t arc_zeroings = 0;     // individual matrix bits cleared
  std::size_t support_checks = 0;
  // Vectorized-path bookkeeping (kernels.h counter-hook contract):
  // pairs/values the truth masks decided without a VM dispatch, and the
  // hoisted evaluations spent building masks / testing unary guards.
  std::size_t masked_binary_pairs = 0;
  std::size_t masked_unary_decided = 0;
  std::size_t mask_build_evals = 0;
  /// Tiled-sweep bookkeeping: row tiles dispatched through the SIMD
  /// kernel layer and 64-bit lane-words it processed.  Both are
  /// functions of the network shape and sweep schedule only — the same
  /// on every dispatch tier (scalar/AVX2/AVX-512), so the perf gate can
  /// pin them on any machine.
  std::size_t tile_sweeps = 0;
  std::size_t simd_lane_words = 0;

  /// Constraint tests performed, in plain-sweep units: what unary_evals
  /// would read had every value been dispatched individually.  Equal to
  /// the plain path's unary_evals for the same network state (the
  /// paper-figure benches consume these, so counts stay reproducible
  /// whichever evaluation path ran).
  std::size_t effective_unary_evals() const {
    return unary_evals + masked_unary_decided;
  }
  /// Same, binary: the plain sweep charges 2 evals per surviving pair.
  std::size_t effective_binary_evals() const {
    return binary_evals + 2 * masked_binary_pairs;
  }

  NetworkCounters& operator+=(const NetworkCounters& o) {
    unary_evals += o.unary_evals;
    binary_evals += o.binary_evals;
    eliminations += o.eliminations;
    arc_zeroings += o.arc_zeroings;
    support_checks += o.support_checks;
    masked_binary_pairs += o.masked_binary_pairs;
    masked_unary_decided += o.masked_unary_decided;
    mask_build_evals += o.mask_build_evals;
    tile_sweeps += o.tile_sweeps;
    simd_lane_words += o.simd_lane_words;
    return *this;
  }
};

struct NetworkOptions {
  /// Build arc matrices at construction (MasPar design decision 1)
  /// instead of on first binary-constraint application (the paper's
  /// sequential formulation, Fig. 3).  Results are identical; the
  /// ablation bench measures the work difference.
  bool prebuild_arcs = true;
};

/// One elimination, attributed to the phase that caused it.  Consumed
/// by diagnostics (cdg/diagnose.h) and by anyone debugging a grammar.
struct TraceEvent {
  enum class Kind {
    UnaryElimination,    // a unary constraint removed the role value
    SupportElimination,  // consistency maintenance removed it
  };
  Kind kind;
  std::string cause;   // constraint name, or "consistency"
  int role;            // dense role index
  RoleValue rv;
};

class Network {
 public:
  using Options = NetworkOptions;
  using TraceFn = std::function<void(const TraceEvent&)>;

  Network(const Grammar& g, const Sentence& s, Options opt = {});

  /// Rebinds this network to a new sentence of the *same length* under
  /// the *same grammar*, reusing the whole arena in place (no
  /// allocation; the serve hot path relies on this).  Counters and the
  /// trace hook are reset; if the arcs were built they are refilled
  /// from the fresh domains.  Returns false (and leaves the network
  /// untouched) when the sentence length differs.
  bool reinit(const Sentence& s);

  // ---- shape ----------------------------------------------------------
  int n() const { return sentence_.size(); }
  int roles_per_word() const { return grammar_->num_roles(); }
  /// Total role count R = n * q.
  int num_roles() const { return n() * roles_per_word(); }
  /// Shared domain-axis length D = |L| * (n+1).
  int domain_size() const { return indexer_.domain_size(); }

  const Grammar& grammar() const { return *grammar_; }
  const Sentence& sentence() const { return sentence_; }
  const RvIndexer& indexer() const { return indexer_; }

  /// The single allocation backing all network state.
  NetworkArena& arena() { return arena_; }
  const NetworkArena& arena() const { return arena_; }

  /// Dense index of (word position, role id); words are 1-based.
  int role_index(WordPos w, RoleId r) const {
    return (w - 1) * roles_per_word() + r;
  }
  WordPos word_of_role(int role) const { return role / roles_per_word() + 1; }
  RoleId role_id_of(int role) const { return role % roles_per_word(); }

  // ---- domains ---------------------------------------------------------
  util::ConstBitSpan domain(int role) const { return arena_.domain(role); }
  bool alive(int role, int rv) const {
    return arena_.domain(role).test(static_cast<std::size_t>(rv));
  }
  /// Alive role values of a role, in dense-index order.
  std::vector<RoleValue> alive_values(int role) const;

  // ---- arcs --------------------------------------------------------------
  bool arcs_built() const { return arcs_built_; }
  /// Initializes every arc matrix: bit (i,j) is 1 iff both role values
  /// are currently alive.  Idempotent.
  void build_arcs();

  /// Arc matrix for roles ra < rb (rows = ra's values, cols = rb's).
  util::ConstBitMatrixView arc_matrix(int ra, int rb) const;

  /// Mutable matrix access for parallel engines that partition work by
  /// arc (each worker owns disjoint matrices).  Counter bookkeeping is
  /// the caller's responsibility.
  util::BitMatrixView arc_matrix_mut(int ra, int rb) {
    return arena_.arc(ra, rb);
  }

  bool arc_allows(int ra, int rv_a, int rb, int rv_b) const;
  void arc_forbid(int ra, int rv_a, int rb, int rv_b);

  // ---- alive cache -------------------------------------------------------
  /// Rebuilds the per-role alive-value and binding lists from the
  /// current domains into persistent scratch (no steady-state
  /// allocation).  The spans below stay valid until the next refresh;
  /// eliminations do not invalidate the memory, only the contents.
  void refresh_alive_cache();
  std::span<const int> alive_list(int role) const {
    return {alive_flat_.data() + alive_off_[role],
            alive_off_[role + 1] - alive_off_[role]};
  }
  std::span<const Binding> binding_list(int role) const {
    return {bind_flat_.data() + alive_off_[role],
            alive_off_[role + 1] - alive_off_[role]};
  }
  /// Total alive values across all roles, per the last refresh.
  std::size_t alive_cache_total() const { return alive_flat_.size(); }

  // ---- parsing operations ------------------------------------------------
  /// Propagates one unary constraint over every role value (paper §1.4);
  /// returns the number of role values eliminated.
  int apply_unary(const CompiledConstraint& c);

  /// Propagates one binary constraint over every pair of role values on
  /// every arc, in both variable assignments; returns bits zeroed.
  /// Builds arcs first if they are lazy.
  int apply_binary(const CompiledConstraint& c);

  // ---- vectorized (masked) parsing operations ---------------------------
  /// Hoisted-guard unary propagation: identical eliminations to
  /// apply_unary(c.full), but roles whose guard fails skip the per-value
  /// sweep entirely (charged to counters().masked_unary_decided).
  int apply_unary(const FactoredConstraint& c);

  /// Masked binary sweep: identical bits zeroed to apply_binary(c.full),
  /// with most pairs decided by bitwise row kernels over the constraint's
  /// truth masks (stored in arena mask slot group `slot`, one group per
  /// binary constraint) and only mask-undecided pairs dispatched to the
  /// bytecode VM.  With `apply_residual` false, undecided pairs are left
  /// untouched instead (bench_ablation_masks' mask-only mode; the result
  /// then under-approximates the plain sweep).
  int apply_binary(const FactoredConstraint& c, std::size_t slot,
                   bool apply_residual = true);

  /// Builds (if stale) constraint `c`'s truth masks in slot group `slot`;
  /// hoisted evaluations are charged to counters().mask_build_evals.
  /// Parallel engines call this up front, then read masks() per arc.
  void ensure_masks(const FactoredConstraint& c, std::size_t slot);

  /// Mask spans of slot group `slot` for `role` (ensure_masks first).
  kernels::FactoredMasks masks(std::size_t slot, int role) const {
    return mask_cache_.masks(arena_, slot, role);
  }

  /// The mask cache itself (staleness inspection in tests).
  const kernels::MaskCache& mask_cache() const { return mask_cache_; }

  /// Removes a role value: clears its domain bit and zeroes its row or
  /// column in every arc matrix incident to `role`.
  void eliminate(int role, int rv);

  /// Removes several role values of ONE role: identical bookkeeping and
  /// end state to calling eliminate(role, rv) for each element in
  /// order, but large batches clear their arc columns in one fused
  /// ANDN pass per incident arc (kernels::zero_rows_cols) instead of
  /// one strided pass per victim.  Clobbers the role's support-scratch
  /// row.  Returns the number of values actually eliminated.
  int eliminate_batch(int role, std::span<const int> rvs);

  /// True if some arc no longer supports (role, rv): an incident matrix
  /// whose row/column for rv is all zeros (paper §1.4).
  bool supported(int role, int rv);

  /// Word-parallel support sweep: fills the role's arena support-scratch
  /// row with the per-value support bits (kernels::support_mask) and
  /// returns a view of it.  out.test(rv) == supported(role, rv) for
  /// every rv; support_checks is charged one per alive value, exactly
  /// like the per-value path.  The span stays valid until the next
  /// support_mask call for the same role.
  util::ConstBitSpan support_mask(int role);

  /// One consistency-maintenance sweep over all role values; returns the
  /// number eliminated.  Eliminations cascade within the sweep.
  int consistency_step();

  /// Filtering (paper §1.4): repeats consistency_step until quiescent or
  /// `max_iters` sweeps have run (<0 = unbounded, the sequential model;
  /// the MasPar bounds it, design decision 5).  Returns sweeps that
  /// eliminated at least one value.
  int filter(int max_iters = -1);

  /// Necessary acceptance condition: every role still has a candidate.
  bool all_roles_nonempty() const;

  /// Structural self-check for tests: every eliminated role value must
  /// have fully zeroed rows/columns in its incident arcs (equivalently,
  /// arc bits exist only at alive×alive positions), and — when the
  /// arena's AC-4 counters are valid — every counter must equal the
  /// corresponding row/column support count.  Returns true when all
  /// invariants hold.
  bool check_invariants() const;

  // ---- stats ------------------------------------------------------------
  std::size_t total_alive() const;
  std::size_t arc_ones() const;
  NetworkCounters& counters() { return counters_; }
  const NetworkCounters& counters() const { return counters_; }

  /// Binding (rv, role-id, word-pos) for constraint evaluation.
  Binding binding(int role, int rv) const {
    return Binding{indexer_.decode(rv), role_id_of(role), word_of_role(role)};
  }

  /// Installs an elimination observer (empty function to clear).  The
  /// callback fires once per role value removed, attributed to the
  /// unary constraint or consistency sweep that killed it.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  void init_domains();
  void fill_arcs();

  const Grammar* grammar_;
  Sentence sentence_;
  RvIndexer indexer_;
  NetworkArena arena_;  // domains + arcs + counters + staging + masks
  kernels::MaskCache mask_cache_;
  bool arcs_built_ = false;
  NetworkCounters counters_;
  TraceFn trace_;
  // Attribution context for trace events during apply_unary /
  // consistency_step.
  TraceEvent::Kind current_kind_ = TraceEvent::Kind::SupportElimination;
  std::string current_cause_ = "consistency";
  // Quiescence memo: the (eliminations + arc_zeroings) total observed at
  // the start of the last consistency sweep that eliminated nothing.
  // While that total is unchanged the network cannot have lost support,
  // so a repeat sweep is provably a no-op and is skipped (the common
  // case: the fixpoint-confirming final filter sweep, and sweeps after
  // binary constraints that zeroed nothing).  Any mutation path —
  // eliminate, arc_forbid, the binary sweeps — bumps those counters and
  // re-arms the sweep.
  static constexpr std::uint64_t kNoCleanSweep = ~std::uint64_t{0};
  std::uint64_t clean_sweep_at_ = kNoCleanSweep;
  // Persistent scratch (capacity retained across reinit; the serve hot
  // path must not allocate per request).
  std::vector<int> victims_;             // per-role elimination staging
  std::vector<int> alive_flat_;          // alive rvs, role-major
  std::vector<Binding> bind_flat_;       // bindings, same indexing
  std::vector<std::size_t> alive_off_;   // [R + 1] offsets into the above
};

}  // namespace parsec::cdg
