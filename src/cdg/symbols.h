// String interning for grammar symbols (labels, roles, categories).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace parsec::cdg {

/// Bidirectional name <-> dense-id table.  Ids are small ints assigned in
/// insertion order; every symbol family (labels L, roles R, categories)
/// gets its own table.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it if new.
  int intern(std::string_view name);

  /// Returns the id for `name` or nullopt if it was never interned.
  std::optional<int> find(std::string_view name) const;

  /// Returns the id for `name`; throws std::out_of_range if unknown.
  int at(std::string_view name) const;

  const std::string& name(int id) const { return names_.at(id); }
  int size() const { return static_cast<int>(names_.size()); }
  bool contains(std::string_view name) const { return find(name).has_value(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace parsec::cdg
