#include "cdg/batch.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cdg/kernels.h"
#include "obs/trace.h"

namespace parsec::cdg {

namespace {

constexpr std::size_t kStageWords = 2048;

}  // namespace

BatchParser::BatchParser(const Grammar& g, NetworkOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {
  // The pooled lane networks only supply domains, unary propagation
  // and truth masks; gather() synthesizes the interleaved arc rows
  // from the post-unary domains, so the per-network arc matrices are
  // never read.  Forcing the lazy-arc path skips fill_arcs at both
  // construction and every reinit — a large slice of per-lane prep.
  opt_.prebuild_arcs = false;
}

void BatchParser::gather(std::span<Network> nets) {
  obs::Span span("batch.gather");
  const std::size_t B = nets.size();
  // Interleave word wi of lane b at batched index wi*kLanes + b.
  // Unfilled lanes are written as zero in the same pass (a zero row is
  // a no-op in every kernel), so no buffer-wide clear is needed.
  for (int role = 0; role < R_; ++role) {
    Word* d = dom_row(role);
    for (std::size_t b = 0; b < B; ++b) {
      const Word* s = nets[b].domain(role).words();
      for (std::size_t wi = 0; wi < W_; ++wi) d[wi * kLanes + b] = s[wi];
    }
    for (std::size_t b = B; b < kLanes; ++b)
      for (std::size_t wi = 0; wi < W_; ++wi) d[wi * kLanes + b] = 0;
    Word* ud = udom_row(role);
    for (std::size_t wi = 0; wi < W_; ++wi) {
      Word u = 0;
      for (std::size_t b = 0; b < kLanes; ++b) u |= d[wi * kLanes + b];
      ud[wi] = u;
    }
  }
  for (std::size_t slot = 0; slot < binary_.size(); ++slot) {
    for (int role = 0; role < R_; ++role) {
      for (std::size_t b = 0; b < B; ++b) {
        const kernels::FactoredMasks m = nets[b].masks(slot, role);
        const Word* parts[4] = {m.ante_x.words(), m.ante_y.words(),
                                m.cons_x.words(), m.cons_y.words()};
        for (int p = 0; p < 4; ++p) {
          Word* d = mask_row(slot, role, p);
          for (std::size_t wi = 0; wi < W_; ++wi)
            d[wi * kLanes + b] = parts[p][wi];
        }
      }
      for (std::size_t b = B; b < kLanes; ++b)
        for (int p = 0; p < 4; ++p) {
          Word* d = mask_row(slot, role, p);
          for (std::size_t wi = 0; wi < W_; ++wi) d[wi * kLanes + b] = 0;
        }
    }
  }
  // Arc synthesis — fill_arcs without per-lane matrices: the initial
  // arc row i of (ra, rb) is the partner's domain masked by lane i's
  // aliveness, so the interleaved rows come straight from the already
  // interleaved domains.  Rows dead in every lane are skipped AND never
  // read (every kernel tests union-aliveness against the current
  // domains, which only shrink), so stale words left by a previous
  // same-shape batch are harmless.
  for (std::size_t t = 0; t < num_arcs_; ++t) {
    const auto [ra, rb] = nets[0].arena().arc_pair(t);
    const Word* da = dom_row(ra);
    const Word* db = dom_row(rb);
    const Word* ud = udom_row(ra);
    for (std::size_t i = 0; i < D_; ++i) {
      if (!union_alive(ud, i)) continue;
      const std::size_t g = (i / NetworkArena::kWordBits) * kLanes;
      const Word bit = Word{1} << (i % NetworkArena::kWordBits);
      Word lane_mask[kLanes];
      for (std::size_t b = 0; b < kLanes; ++b)
        lane_mask[b] = (da[g + b] & bit) ? ~Word{0} : Word{0};
      Word* r = arc_row(t, i);
      for (std::size_t wi = 0; wi < W_; ++wi)
        for (std::size_t b = 0; b < kLanes; ++b)
          r[wi * kLanes + b] = db[wi * kLanes + b] & lane_mask[b];
    }
  }
  span.arg("lanes", static_cast<std::int64_t>(B));
  span.arg("words",
           static_cast<std::int64_t>(dom_.size() + arcs_.size() +
                                     masks_.size()));
}

void BatchParser::sweep_constraint(std::span<Network> nets, std::size_t slot,
                                   std::size_t filled) {
  const FactoredConstraint& c = binary_[slot];
  const simd::Ops& ops = simd::ops();
  const RvIndexer& ix = nets[0].indexer();

  // Same two-phase tiling as kernels::sweep_binary_masked, row width
  // sW_ (kLanes words per 64-value word group).
  Word stage[kStageWords];
  Word consts[kernels::kMaxSweepTileRows][8][kLanes];
  std::size_t rows_idx[kernels::kMaxSweepTileRows];
  bool rows_und[kernels::kMaxSweepTileRows];
  const std::size_t row_cap =
      std::max<std::size_t>(1, std::min(kernels::kMaxSweepTileRows,
                                        sW_ ? kStageWords / sW_ : 1));
  const std::size_t tile_cap =
      std::max<std::size_t>(1,
                            std::min(kernels::sweep_tiling().rows, row_cap));

  EvalContext ctx;
  for (std::size_t t = 0; t < num_arcs_; ++t) {
    const auto [ra, rb] = nets[0].arena().arc_pair(t);
    const RoleId rida = nets[0].role_id_of(ra);
    const RoleId ridb = nets[0].role_id_of(rb);
    const WordPos wa = nets[0].word_of_role(ra);
    const WordPos wb = nets[0].word_of_role(rb);
    const Word* AX = mask_row(slot, rb, 0);
    const Word* AY = mask_row(slot, rb, 1);
    const Word* CX = mask_row(slot, rb, 2);
    const Word* CY = mask_row(slot, rb, 3);
    const Word* ud = udom_row(ra);
    // Row-side mask rows of ra (interleaved): the per-row broadcast
    // constants are read straight from the gathered mask words instead
    // of re-testing each lane's per-network mask bits.
    const Word* MAX = mask_row(slot, ra, 0);
    const Word* MAY = mask_row(slot, ra, 1);
    const Word* MCX = mask_row(slot, ra, 2);
    const Word* MCY = mask_row(slot, ra, 3);

    std::size_t i = 0;
    while (i < D_) {
      // Gather a tile of rows alive in at least one lane.
      std::size_t nrows = 0;
      for (; i < D_ && nrows < tile_cap; ++i) {
        if (!union_alive(ud, i)) continue;
        const std::size_t g = (i / NetworkArena::kWordBits) * kLanes;
        const std::size_t sh = i % NetworkArena::kWordBits;
        rows_idx[nrows] = i;
        for (std::size_t b = 0; b < filled; ++b) {
          const bool ax = (MAX[g + b] >> sh) & Word{1};
          const bool ay = (MAY[g + b] >> sh) & Word{1};
          const bool cx = (MCX[g + b] >> sh) & Word{1};
          const bool cy = (MCY[g + b] >> sh) & Word{1};
          Word* k = &consts[nrows][0][b];
          k[0 * kLanes] = ax ? Word{0} : ~Word{0};
          k[1 * kLanes] = (cx && !c.cons_residual) ? ~Word{0} : Word{0};
          k[2 * kLanes] = (ax && !c.ante_residual) ? ~Word{0} : Word{0};
          k[3 * kLanes] = cx ? Word{0} : ~Word{0};
          k[4 * kLanes] = ay ? Word{0} : ~Word{0};
          k[5 * kLanes] = (cy && !c.cons_residual) ? ~Word{0} : Word{0};
          k[6 * kLanes] = (ay && !c.ante_residual) ? ~Word{0} : Word{0};
          k[7 * kLanes] = cy ? Word{0} : ~Word{0};
        }
        // Unfilled lanes: the row words are zero, any constants do.
        for (std::size_t b = filled; b < kLanes; ++b)
          for (int p = 0; p < 8; ++p) consts[nrows][p][b] = 0;
        ++nrows;
      }
      if (!nrows) continue;
      // Vector phase across all lanes at once.
      bool tile_und = false;
      for (std::size_t r = 0; r < nrows; ++r) {
        const simd::SweepConsts kc{consts[r][0], consts[r][1], consts[r][2],
                                   consts[r][3], consts[r][4], consts[r][5],
                                   consts[r][6], consts[r][7]};
        simd::SweepStats st;
        ops.sweep_row(arc_row(t, rows_idx[r]), AX, AY, CX, CY, kc, kLanes,
                      sW_, stage + r * sW_, &st);
        for (std::size_t b = 0; b < filled; ++b) {
          lane_counters_[b].masked_binary_pairs += st.masked[b];
          lane_counters_[b].arc_zeroings += st.dead[b];
          lane_counters_[b].simd_lane_words += W_;
        }
        rows_und[r] = st.any_undecided;
        tile_und |= st.any_undecided;
      }
      for (std::size_t b = 0; b < filled; ++b)
        ++lane_counters_[b].tile_sweeps;
      // Residual phase: lane = word index mod kLanes picks the sentence.
      if (!tile_und) continue;
      for (std::size_t r = 0; r < nrows; ++r) {
        if (!rows_und[r]) continue;
        const std::size_t ri = rows_idx[r];
        Word* row = arc_row(t, ri);
        const Binding bind_a{ix.decode(static_cast<int>(ri)), rida, wa};
        for (std::size_t wt = 0; wt < sW_; ++wt) {
          Word u = stage[r * sW_ + wt];
          if (!u) continue;
          const std::size_t b = wt % kLanes;
          const std::size_t wi = wt / kLanes;
          assert(b < filled);
          ctx.sentence = sents_[b];
          while (u) {
            const std::size_t bit =
                static_cast<std::size_t>(std::countr_zero(u));
            u &= u - 1;
            const std::size_t j = wi * NetworkArena::kWordBits + bit;
            lane_counters_[b].binary_evals += 2;
            ctx.x = bind_a;
            ctx.y = Binding{ix.decode(static_cast<int>(j)), ridb, wb};
            bool ok = eval_compiled(c.full, ctx);
            if (ok) {
              std::swap(ctx.x, ctx.y);
              ok = eval_compiled(c.full, ctx);
            }
            if (!ok) {
              row[wt] &= ~(Word{1} << bit);
              ++lane_counters_[b].arc_zeroings;
            }
          }
        }
      }
    }
  }
}

void BatchParser::eliminate(int role, std::size_t lane, std::size_t rv) {
  const std::size_t wi0 = rv / NetworkArena::kWordBits;
  const std::size_t g = wi0 * kLanes + lane;
  const Word bit = Word{1} << (rv % NetworkArena::kWordBits);
  Word* d = dom_row(role);
  d[g] &= ~bit;
  {
    // Keep the union row current (cheap: re-OR one word group).
    Word u = 0;
    for (std::size_t b = 0; b < kLanes; ++b) u |= d[wi0 * kLanes + b];
    udom_row(role)[wi0] = u;
  }
  ++lane_counters_[lane].eliminations;
  for (int other = 0; other < R_; ++other) {
    if (other == role) continue;
    if (role < other) {
      // Row side: zero this lane's words of row rv.
      Word* r = arc_row(arc_index(role, other), rv);
      for (std::size_t wi = 0; wi < W_; ++wi) r[wi * kLanes + lane] = 0;
    } else {
      // Column side: clear bit rv of this lane in every union-alive row
      // of the partner (dead rows are already zero there).
      const std::size_t t = arc_index(other, role);
      const Word* ud = udom_row(other);
      for (std::size_t i = 0; i < D_; ++i) {
        if (!union_alive(ud, i)) continue;
        arc_row(t, i)[g] &= ~bit;
      }
    }
  }
}

int BatchParser::consistency_step(std::size_t filled) {
  // Same provable-no-op shortcut as Network::consistency_step: support
  // can only be lost through eliminations or arc zeroings, so if
  // neither counter moved since the last sweep that found nothing,
  // this sweep cannot either.
  std::uint64_t muts = 0;
  for (std::size_t b = 0; b < filled; ++b)
    muts += lane_counters_[b].eliminations + lane_counters_[b].arc_zeroings;
  if (muts == clean_sweep_at_) return 0;
  const simd::Ops& ops = simd::ops();
  std::vector<Word>& acc = vm_;  // scratch reuse: one interleaved row
  int eliminated = 0;
  // Serial-equivalent charge: one support probe per alive value.
  for (int role = 0; role < R_; ++role) {
    const Word* d = dom_row(role);
    for (std::size_t b = 0; b < filled; ++b) {
      std::size_t alive = 0;
      for (std::size_t wi = 0; wi < W_; ++wi)
        alive += static_cast<std::size_t>(
            std::popcount(d[wi * kLanes + b]));
      lane_counters_[b].support_checks += alive;
    }
    std::copy(d, d + sW_, sup_row(role));
  }
  // Fused support pass: every arc matrix is traversed ONCE.  A row i of
  // (ra, rb) supplies both sides of the pair — its per-lane word OR is
  // ra's row-side support of value i, and the same words OR into the
  // accumulator that becomes rb's column-side support — so the arc
  // traffic is half of the naive per-ordered-pair scan.
  for (std::size_t t = 0; t < num_arcs_; ++t) {
    const auto [ra, rb] = arc_pairs_[t];
    const Word* ud = udom_row(ra);
    Word* supa = sup_row(ra);
    std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(sW_),
              Word{0});
    for (std::size_t i = 0; i < D_; ++i) {
      if (!union_alive(ud, i)) continue;
      const Word* r = arc_row(t, i);
      Word any[kLanes] = {};
      for (std::size_t wi = 0; wi < W_; ++wi)
        for (std::size_t b = 0; b < kLanes; ++b) {
          const Word w = r[wi * kLanes + b];
          any[b] |= w;
          acc[wi * kLanes + b] |= w;
        }
      const std::size_t g = (i / NetworkArena::kWordBits) * kLanes;
      const Word bit = Word{1} << (i % NetworkArena::kWordBits);
      for (std::size_t b = 0; b < kLanes; ++b)
        if (!any[b]) supa[g + b] &= ~bit;
    }
    ops.and_into(sup_row(rb), acc.data(), sW_);
  }
  // Victims, per role.  Unlike the serial sweep's per-role cascade the
  // supports above are a snapshot, so a value whose last support dies
  // in this pass survives until the next one — the fixpoint is the
  // same (confluence), the passes are just individually cheaper.
  for (int role = 0; role < R_; ++role) {
    const Word* d = dom_row(role);
    const Word* sup = sup_row(role);
    for (std::size_t wt = 0; wt < sW_; ++wt) {
      Word v = d[wt] & ~sup[wt];
      if (!v) continue;
      const std::size_t lane = wt % kLanes;
      const std::size_t wi = wt / kLanes;
      while (v) {
        const std::size_t bit =
            static_cast<std::size_t>(std::countr_zero(v));
        v &= v - 1;
        eliminate(role, lane, wi * NetworkArena::kWordBits + bit);
        ++eliminated;
      }
    }
  }
  if (eliminated == 0) clean_sweep_at_ = muts;
  return eliminated;
}

std::vector<BatchLaneResult> BatchParser::parse(
    std::span<const Sentence> sentences) {
  assert(!sentences.empty() && sentences.size() <= kLanes);
  const std::size_t B = sentences.size();
  for (std::size_t b = 1; b < B; ++b)
    assert(sentences[b].size() == sentences[0].size());

  // Per-lane prep through pooled ordinary Networks (reinit reuses each
  // lane's arena, like engine::NetworkScratch): domain init, unary
  // propagation, truth masks.  The constructor forces
  // prebuild_arcs = false, so build_arcs is never called — the
  // interleaved arc rows are synthesized directly in gather(), and
  // the per-lane arc regions are never touched.
  const std::size_t len = sentences[0].size();
  std::vector<Network>& pool = pool_[len];
  if (pool.empty()) pool.reserve(kLanes);
  {
    obs::Span prep_span("batch.prep");
    for (std::size_t b = 0; b < B; ++b) {
      if (b < pool.size()) {
        const bool ok = pool[b].reinit(sentences[b]);
        (void)ok;
        assert(ok);
      } else {
        pool.emplace_back(*grammar_, sentences[b], opt_);
      }
    }
    for (std::size_t b = 0; b < B; ++b) {
      for (const auto& c : unary_) pool[b].apply_unary(c);
      for (std::size_t s = 0; s < binary_.size(); ++s)
        pool[b].ensure_masks(binary_[s], s);
    }
    prep_span.arg("lanes", static_cast<std::int64_t>(B));
  }
  std::span<Network> nets(pool.data(), B);

  // Batch shape + buffers.  The buffers only ever grow: every word a
  // kernel reads is written earlier in the same parse (gather fills
  // all union-alive rows fully; dead rows are never read), so a shape
  // change just re-labels the index space — no clearing, and cycling
  // through a few lengths (the serving case) costs nothing at steady
  // state.
  const int R = nets[0].num_roles();
  const std::size_t D = static_cast<std::size_t>(nets[0].domain_size());
  const std::size_t W = nets[0].domain(0).word_count();
  const std::size_t num_arcs = nets[0].arena().num_arcs();
  if (R != R_ || D != D_ || W != W_ || num_arcs != num_arcs_) {
    R_ = R;
    D_ = D;
    W_ = W;
    sW_ = W_ * kLanes;
    num_arcs_ = num_arcs;
    const auto grow = [](std::vector<Word>& v, std::size_t n) {
      if (v.size() < n) v.resize(n);
    };
    grow(dom_, static_cast<std::size_t>(R_) * sW_);
    grow(udom_, static_cast<std::size_t>(R_) * W_);
    grow(sup_, static_cast<std::size_t>(R_) * sW_);
    grow(arcs_, num_arcs_ * D_ * sW_);
    grow(masks_, binary_.size() * static_cast<std::size_t>(R_) * 4 * sW_);
    grow(vm_, sW_);
    arc_pairs_.resize(num_arcs_);
    for (std::size_t t = 0; t < num_arcs_; ++t)
      arc_pairs_[t] = nets[0].arena().arc_pair(t);
  }
  sents_.assign(kLanes, nullptr);
  for (std::size_t b = 0; b < B; ++b) sents_[b] = &sentences[b];
  lane_counters_.assign(kLanes, NetworkCounters{});
  clean_sweep_at_ = ~std::uint64_t{0};

  gather(nets);

  {
    obs::Span span("batch.binary");
    // Consistency every kConsistencyStride constraints: the serial
    // engine's step-per-constraint schedule prunes domains early (so
    // later sweeps see thinner rows) but a batched pass scans the
    // union of alive rows across every arc, so running one per
    // constraint costs more than the pruning saves, and deferring all
    // of them to the final fixpoint leaves the sweeps ~20% fatter.
    // The stride buys most of the pruning at a fraction of the passes
    // (confluence makes the schedule a pure cost knob — the fixpoint
    // bits cannot change).
    constexpr std::size_t kConsistencyStride = 5;
    for (std::size_t s = 0; s < binary_.size(); ++s) {
      sweep_constraint(nets, s, B);
      if ((s + 1) % kConsistencyStride == 0) consistency_step(B);
    }
    span.arg("constraints", static_cast<std::int64_t>(binary_.size()));
  }

  int iters = 0;
  {
    obs::Span span("batch.filter");
    while (consistency_step(B) != 0) ++iters;
    span.arg("iterations", iters);
  }

  // Per-lane results straight from the batch arena.
  obs::Span span("batch.scatter");
  std::vector<BatchLaneResult> out(B);
  for (std::size_t b = 0; b < B; ++b) {
    BatchLaneResult& r = out[b];
    r.consistency_iterations = iters;
    r.domains.reserve(static_cast<std::size_t>(R_));
    bool all_nonempty = true;
    for (int role = 0; role < R_; ++role) {
      util::DynBitset d(D_);
      const Word* src = dom_row(role);
      for (std::size_t wi = 0; wi < W_; ++wi)
        d.words()[wi] = src[wi * kLanes + b];
      r.alive_role_values += d.count();
      if (d.none()) all_nonempty = false;
      r.domains.push_back(std::move(d));
    }
    r.accepted = all_nonempty;
    // Prep-phase charges (unary, mask build) + batched-phase charges.
    r.counters = nets[b].counters();
    r.counters += lane_counters_[b];
  }
  return out;
}

}  // namespace parsec::cdg
