// Role values and their dense per-sentence indexing.
//
// A role value is a (label, modifiee) pair (paper §1.1): "SUBJ-3" means
// label SUBJ modifying word 3; "ROOT-nil" means label ROOT modifying no
// word.  For a sentence of n words we index role values densely as
//
//     index = label * (n + 1) + mod,      mod in {0=nil, 1..n}
//
// giving a fixed domain size D = |L| * (n+1) shared by every role.  This
// matches MasPar design decision 4 (§2.2.1): eliminated values keep their
// slot, their rows/columns are simply zeroed.
#pragma once

#include <cassert>
#include <string>

#include "cdg/types.h"

namespace parsec::cdg {

struct RoleValue {
  LabelId label = 0;
  WordPos mod = kNil;

  bool operator==(const RoleValue&) const = default;
};

/// Encodes/decodes role values for a sentence of `n` words with `L`
/// grammar labels.
class RvIndexer {
 public:
  RvIndexer(int n_words, int num_labels)
      : n_(n_words), num_labels_(num_labels) {}

  int n() const { return n_; }
  int num_labels() const { return num_labels_; }

  /// Domain size: every role's bitset and arc-matrix axis has this length.
  int domain_size() const { return num_labels_ * (n_ + 1); }

  int encode(RoleValue rv) const {
    assert(rv.label >= 0 && rv.label < num_labels_);
    assert(rv.mod >= 0 && rv.mod <= n_);
    return rv.label * (n_ + 1) + rv.mod;
  }

  RoleValue decode(int index) const {
    assert(index >= 0 && index < domain_size());
    return RoleValue{index / (n_ + 1), index % (n_ + 1)};
  }

  LabelId label_of(int index) const { return index / (n_ + 1); }
  WordPos mod_of(int index) const { return index % (n_ + 1); }

 private:
  int n_;
  int num_labels_;
};

/// Renders "SUBJ-3" / "ROOT-nil" like the paper's figures.
std::string to_string(const class Grammar& g, RoleValue rv);

}  // namespace parsec::cdg
