#include "cdg/extract.h"

#include <algorithm>

#include "obs/trace.h"

namespace parsec::cdg {

namespace {

/// Backtracking enumerator over the CN.  Variables are roles, domains
/// are alive role values, and binary compatibility is exactly the arc
/// matrices.  MRV ordering: most-constrained role first.
class Enumerator {
 public:
  Enumerator(Network& net, std::size_t limit) : net_(net), limit_(limit) {
    net_.build_arcs();
    const int R = net_.num_roles();
    order_.reserve(R);
    for (int r = 0; r < R; ++r) order_.push_back(r);
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      return net_.domain(a).count() < net_.domain(b).count();
    });
    chosen_.assign(R, -1);
  }

  /// When `collect` is false only counts solutions.
  void run(bool collect) {
    collect_ = collect;
    search(0);
  }

  std::size_t count() const { return count_; }
  std::vector<ParseSolution>& solutions() { return solutions_; }

 private:
  void search(std::size_t depth) {
    if (count_ >= limit_) return;
    if (depth == order_.size()) {
      ++count_;
      if (collect_) {
        ParseSolution sol;
        sol.assignment.resize(order_.size());
        for (std::size_t i = 0; i < order_.size(); ++i)
          sol.assignment[order_[i]] = net_.indexer().decode(chosen_[order_[i]]);
        solutions_.push_back(std::move(sol));
      }
      return;
    }
    const int role = order_[depth];
    bool pruned_all = true;
    net_.domain(role).for_each([&](std::size_t rv) {
      if (count_ >= limit_) return;
      pruned_all = false;
      // Check compatibility with every earlier assignment.
      for (std::size_t i = 0; i < depth; ++i) {
        const int other = order_[i];
        if (!net_.arc_allows(role, static_cast<int>(rv), other,
                             chosen_[other]))
          return;  // this rv conflicts; try next
      }
      chosen_[role] = static_cast<int>(rv);
      search(depth + 1);
      chosen_[role] = -1;
    });
    (void)pruned_all;
  }

  Network& net_;
  std::size_t limit_;
  bool collect_ = true;
  std::vector<int> order_;
  std::vector<int> chosen_;
  std::size_t count_ = 0;
  std::vector<ParseSolution> solutions_;
};

}  // namespace

std::vector<ParseSolution> extract_parses(Network& net, std::size_t limit) {
  obs::Span span("cdg.extract");
  Enumerator e(net, limit);
  e.run(/*collect=*/true);
  span.arg("parses", e.count());
  return std::move(e.solutions());
}

std::size_t count_parses(Network& net, std::size_t limit) {
  obs::Span span("cdg.extract");
  Enumerator e(net, limit);
  e.run(/*collect=*/false);
  span.arg("parses", e.count());
  return e.count();
}

bool has_parse(Network& net) { return count_parses(net, 1) == 1; }

std::vector<PrecedenceEdge> precedence_graph(const Network& net,
                                             const ParseSolution& sol) {
  std::vector<PrecedenceEdge> edges;
  edges.reserve(sol.assignment.size());
  for (int role = 0; role < net.num_roles(); ++role) {
    const RoleValue rv = sol.assignment[role];
    edges.push_back(PrecedenceEdge{net.word_of_role(role),
                                   net.role_id_of(role), rv.label, rv.mod});
  }
  return edges;
}

std::string render_solution(const Network& net, const ParseSolution& sol) {
  const Grammar& g = net.grammar();
  std::string out;
  for (WordPos w = 1; w <= net.n(); ++w) {
    out += "Word=" + net.sentence().word_at(w) +
           " Position=" + std::to_string(w);
    for (RoleId r = 0; r < g.num_roles(); ++r) {
      const RoleValue rv = sol.assignment[net.role_index(w, r)];
      // Abbreviate the role to its uppercase initial, as the paper does
      // (G = governor, N = needs).
      char initial =
          static_cast<char>(std::toupper(g.role_name(r).front()));
      out += ' ';
      out += initial;
      out += '=';
      out += to_string(g, rv);
    }
    out += '\n';
  }
  return out;
}

std::string render_dot(const Network& net, const ParseSolution& sol) {
  const Grammar& g = net.grammar();
  std::string out = "digraph precedence {\n  rankdir=LR;\n";
  for (WordPos w = 1; w <= net.n(); ++w) {
    out += "  w" + std::to_string(w) + " [label=\"" +
           net.sentence().word_at(w) + "\\n" + std::to_string(w) + "\"";
    // Mark the root (a governor link to nil).
    for (RoleId r = 0; r < g.num_roles(); ++r) {
      const RoleValue rv = sol.assignment[net.role_index(w, r)];
      if (rv.mod == kNil && g.role_name(r) == "governor")
        out += ", shape=doubleoctagon";
    }
    out += "];\n";
  }
  for (WordPos w = 1; w <= net.n(); ++w) {
    for (RoleId r = 0; r < g.num_roles(); ++r) {
      const RoleValue rv = sol.assignment[net.role_index(w, r)];
      if (rv.mod == kNil) continue;
      out += "  w" + std::to_string(w) + " -> w" + std::to_string(rv.mod) +
             " [label=\"" + g.label_name(rv.label) + "\"";
      if (g.role_name(r) != "governor") out += ", style=dashed";
      out += "];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace parsec::cdg
