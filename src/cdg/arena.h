// Arena storage for a constraint network (the PE-array layout, hosted).
//
// The paper lays the whole CN out across the MasPar's PE array: every
// arc submatrix at a fixed offset computable from ids alone (§2.2.1,
// design decision 2).  NetworkArena is the host-side mirror of that
// discipline: ONE contiguous allocation holds, in structure-of-arrays
// form,
//
//   [ domains | arc matrices | AC-4 support counters | rv flags | queue
//     | constraint masks | support scratch ]
//
//   * domains        — R rows of S words (S = ceil(D / 64));
//   * arc matrices   — R*(R-1)/2 upper-triangle matrices, each D rows
//                      of S words (word-aligned rows, fixed stride);
//   * AC-4 counters  — R*D*R int32 support counts;
//   * rv flags       — R*D bytes, shared staging for AC-4 queued flags
//                      and the engines' parallel victim marks (uses are
//                      temporally disjoint; each user zeroes first);
//   * queue          — R*D (role, rv) int32 pairs of FIFO ring storage
//                      for the elimination queue;
//   * masks          — `mask_slots` rows of R×S words: per-(constraint
//                      part, role) truth bitmasks for the vectorized
//                      evaluation layer (kernels::MaskCache); sized by
//                      the grammar (4 slots per binary constraint);
//   * support scratch— R rows of S words: per-role support bitmasks for
//                      the word-parallel consistency sweep (disjoint
//                      per-role writes, so parallel engines share it).
//
// Offsets are pure functions of the shape (R, D), so every consumer —
// serial sweeps, OpenMP arc partitions, the P-RAM and MasPar step
// models, AC-4 — addresses the same flat words through cdg/kernels.h
// spans.  reinit() is O(1): same-shape reuse keeps the allocation and
// only bumps bookkeeping (callers rewrite the regions they use, exactly
// as the PE array is re-filled per sentence).  The serve layer pools
// whole arenas via Network::reinit, making steady-state parsing
// allocation-free per request.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/bitmatrix.h"
#include "util/bitset.h"

namespace parsec::cdg {

class NetworkArena {
 public:
  using Word = util::DynBitset::Word;
  static constexpr std::size_t kWordBits = util::DynBitset::kWordBits;
  /// Domain, mask and support-scratch rows start on cache-line
  /// boundaries: the buffer base is padded to 64 bytes and those rows
  /// use a stride rounded up to 8 words, so SIMD tile loads never split
  /// a line.  Arc-matrix rows keep the natural stride (the arc region
  /// dominates the allocation; the sweep kernels take unaligned rows).
  static constexpr std::size_t kRowAlignBytes = 64;
  static constexpr std::size_t kAlignWords = kRowAlignBytes / sizeof(Word);

  NetworkArena() = default;
  NetworkArena(int roles, int domain_size, std::size_t mask_slots = 0) {
    reshape(roles, domain_size, mask_slots);
  }

  /// (Re)computes the layout for shape (R, D) with `mask_slots` rows of
  /// per-role constraint masks.  Reuses the existing allocation when it
  /// is big enough; otherwise reallocates once.
  void reshape(int roles, int domain_size, std::size_t mask_slots = 0);

  bool same_shape(int roles, int domain_size) const {
    return roles == R_ && domain_size == D_;
  }

  /// Same-shape reuse: O(1) bookkeeping, no allocation, contents left
  /// for the caller to rewrite (Network::reinit refills domains and,
  /// when built, arcs).
  void reinit() {
    assert(R_ > 0);
    counts_valid_ = false;
    ++reinits_;
  }

  // ---- shape ----------------------------------------------------------
  int roles() const { return R_; }
  int domain_size() const { return D_; }
  /// Words per arc-matrix row (natural stride).
  std::size_t row_words() const { return stride_; }
  /// Words per domain / mask / support-scratch row (padded to a
  /// multiple of kAlignWords; the pad words stay zero).
  std::size_t aligned_row_words() const { return dstride_; }
  std::size_t num_arcs() const {
    const std::size_t R = static_cast<std::size_t>(R_);
    return R * (R - 1) / 2;
  }

  /// Row-major upper-triangle index of the arc between ra < rb.
  std::size_t arc_index(int ra, int rb) const {
    assert(0 <= ra && ra < rb && rb < R_);
    const std::size_t R = static_cast<std::size_t>(R_);
    const std::size_t a = static_cast<std::size_t>(ra);
    const std::size_t b = static_cast<std::size_t>(rb);
    return a * R - a * (a + 1) / 2 + (b - a - 1);
  }

  /// Inverse of arc_index (shape metadata, precomputed once).
  std::pair<int, int> arc_pair(std::size_t idx) const {
    return arc_pairs_[idx];
  }

  // ---- domains --------------------------------------------------------
  util::BitSpan domain(int role) {
    return util::BitSpan(base() + domain_off(role),
                         static_cast<std::size_t>(D_));
  }
  util::ConstBitSpan domain(int role) const {
    return util::ConstBitSpan(base() + domain_off(role),
                              static_cast<std::size_t>(D_));
  }

  // ---- arc matrices ---------------------------------------------------
  util::BitMatrixView arc(std::size_t idx) {
    return util::BitMatrixView(base() + arc_off(idx),
                               static_cast<std::size_t>(D_),
                               static_cast<std::size_t>(D_), stride_);
  }
  util::ConstBitMatrixView arc(std::size_t idx) const {
    return util::ConstBitMatrixView(base() + arc_off(idx),
                                    static_cast<std::size_t>(D_),
                                    static_cast<std::size_t>(D_), stride_);
  }
  util::BitMatrixView arc(int ra, int rb) { return arc(arc_index(ra, rb)); }
  util::ConstBitMatrixView arc(int ra, int rb) const {
    return arc(arc_index(ra, rb));
  }

  // ---- AC-4 support counters -----------------------------------------
  /// counts[(role * D + rv) * R + other]: supporting 1-bits of (role,
  /// rv) on the arc to `other` (meaningless for other == role).
  std::span<std::int32_t> support_counts() {
    return {reinterpret_cast<std::int32_t*>(base() + counts_off_),
            static_cast<std::size_t>(R_) * D_ * R_};
  }
  std::span<const std::int32_t> support_counts() const {
    return {reinterpret_cast<const std::int32_t*>(base() + counts_off_),
            static_cast<std::size_t>(R_) * D_ * R_};
  }
  std::int32_t& support_count(int role, int rv, int other) {
    return support_counts()[(static_cast<std::size_t>(role) * D_ + rv) * R_ +
                            other];
  }

  /// True between a completed filter_ac4 and the next mutation; the
  /// invariant checker compares counters against matrices only then.
  bool counts_valid() const { return counts_valid_; }
  void set_counts_valid(bool v) { counts_valid_ = v; }

  // ---- elimination staging -------------------------------------------
  /// One byte per (role, rv): AC-4 "already queued" flags, or parallel
  /// engines' victim marks.  Zero before use.
  std::span<std::uint8_t> rv_flags() {
    return {reinterpret_cast<std::uint8_t*>(base() + flags_off_),
            static_cast<std::size_t>(R_) * D_};
  }

  /// FIFO ring storage for (role, rv) elimination pairs; capacity R*D
  /// entries (each value is enqueued at most once).
  std::span<std::int32_t> queue_storage() {
    return {reinterpret_cast<std::int32_t*>(base() + queue_off_),
            2 * static_cast<std::size_t>(R_) * D_};
  }

  // ---- constraint masks ----------------------------------------------
  /// Rows of per-role truth bitmasks for the vectorized evaluation
  /// layer: mask(slot, role) holds one bit per role value.  Contents
  /// are managed by kernels::MaskCache (generation-checked against
  /// reinits(); reinit invalidates without touching the words).
  std::size_t mask_slots() const { return mask_slots_; }
  util::BitSpan mask(std::size_t slot, int role) {
    return util::BitSpan(base() + mask_off(slot, role),
                         static_cast<std::size_t>(D_));
  }
  util::ConstBitSpan mask(std::size_t slot, int role) const {
    return util::ConstBitSpan(base() + mask_off(slot, role),
                              static_cast<std::size_t>(D_));
  }

  // ---- support scratch ------------------------------------------------
  /// Per-role scratch bitmask for the word-parallel consistency sweep
  /// (kernels::support_mask).  Roles write disjoint rows, so parallel
  /// engines can fill them concurrently.
  util::BitSpan support_scratch(int role) {
    return util::BitSpan(
        base() + support_off_ + static_cast<std::size_t>(role) * dstride_,
        static_cast<std::size_t>(D_));
  }
  util::ConstBitSpan support_scratch(int role) const {
    return util::ConstBitSpan(
        base() + support_off_ + static_cast<std::size_t>(role) * dstride_,
        static_cast<std::size_t>(D_));
  }

  // ---- accounting -----------------------------------------------------
  /// Bytes of the single backing allocation.
  std::size_t bytes() const { return buf_.capacity() * sizeof(Word); }
  /// Times the backing buffer actually (re)allocated.
  std::uint64_t allocations() const { return allocations_; }
  /// Times a same-shape reinit reused the allocation.
  std::uint64_t reinits() const { return reinits_; }

  std::size_t domains_bytes() const {
    return static_cast<std::size_t>(R_) * dstride_ * sizeof(Word);
  }
  std::size_t arcs_bytes() const {
    return num_arcs() * static_cast<std::size_t>(D_) * stride_ * sizeof(Word);
  }
  std::size_t counts_bytes() const {
    return static_cast<std::size_t>(R_) * D_ * R_ * sizeof(std::int32_t);
  }
  std::size_t masks_bytes() const {
    return mask_slots_ * static_cast<std::size_t>(R_) * dstride_ * sizeof(Word);
  }

 private:
  Word* base() { return buf_.data() + base_pad_; }
  const Word* base() const { return buf_.data() + base_pad_; }
  std::size_t domain_off(int role) const {
    return domains_off_ + static_cast<std::size_t>(role) * dstride_;
  }
  std::size_t arc_off(std::size_t idx) const {
    return arcs_off_ + idx * static_cast<std::size_t>(D_) * stride_;
  }
  std::size_t mask_off(std::size_t slot, int role) const {
    assert(slot < mask_slots_ && 0 <= role && role < R_);
    return masks_off_ +
           (slot * static_cast<std::size_t>(R_) +
            static_cast<std::size_t>(role)) *
               dstride_;
  }

  int R_ = 0;
  int D_ = 0;
  std::size_t stride_ = 0;   // words per arc row
  std::size_t dstride_ = 0;  // words per domain/mask/scratch row (padded)
  std::size_t base_pad_ = 0;  // words from buf_.data() to the aligned base
  std::size_t mask_slots_ = 0;
  // Region offsets, in words from base() (the 64-byte-aligned start).
  std::size_t domains_off_ = 0;
  std::size_t arcs_off_ = 0;
  std::size_t counts_off_ = 0;
  std::size_t flags_off_ = 0;
  std::size_t queue_off_ = 0;
  std::size_t masks_off_ = 0;
  std::size_t support_off_ = 0;
  std::vector<Word> buf_;
  std::vector<std::pair<int, int>> arc_pairs_;  // shape metadata
  bool counts_valid_ = false;
  std::uint64_t allocations_ = 0;
  std::uint64_t reinits_ = 0;
};

}  // namespace parsec::cdg
