#include "cdg/printer.h"

#include <sstream>

namespace parsec::cdg {

std::string render_role(const Network& net, int role) {
  const Grammar& g = net.grammar();
  std::string out = "{";
  bool first = true;
  for (const RoleValue& rv : net.alive_values(role)) {
    if (!first) out += ", ";
    first = false;
    out += to_string(g, rv);
  }
  out += '}';
  return out;
}

std::string render_domains(const Network& net) {
  const Grammar& g = net.grammar();
  std::ostringstream os;
  for (WordPos w = 1; w <= net.n(); ++w) {
    os << "word " << w << " \"" << net.sentence().word_at(w) << "\" ["
       << g.category_name(net.sentence().cat_at(w)) << "]\n";
    for (RoleId r = 0; r < g.num_roles(); ++r) {
      os << "  " << g.role_name(r) << ": "
         << render_role(net, net.role_index(w, r)) << '\n';
    }
  }
  return os.str();
}

std::string render_arc_matrix(const Network& net, int role_a, int role_b) {
  const Grammar& g = net.grammar();
  if (role_a > role_b) std::swap(role_a, role_b);
  const auto a_vals = net.alive_values(role_a);
  const auto b_vals = net.alive_values(role_b);
  const auto& idx = net.indexer();
  std::ostringstream os;
  os << "arc " << g.role_name(net.role_id_of(role_a)) << "(word "
     << net.word_of_role(role_a) << ") x " << g.role_name(net.role_id_of(role_b))
     << "(word " << net.word_of_role(role_b) << ")\n";
  // Column headers.
  std::size_t row_hdr_width = 0;
  std::vector<std::string> row_names;
  for (const RoleValue& rv : a_vals) {
    row_names.push_back(to_string(g, rv));
    row_hdr_width = std::max(row_hdr_width, row_names.back().size());
  }
  os << std::string(row_hdr_width, ' ');
  std::vector<std::string> col_names;
  for (const RoleValue& rv : b_vals) {
    col_names.push_back(to_string(g, rv));
    os << ' ' << col_names.back();
  }
  os << '\n';
  const auto& m = net.arc_matrix(role_a, role_b);
  for (std::size_t i = 0; i < a_vals.size(); ++i) {
    os << row_names[i]
       << std::string(row_hdr_width - row_names[i].size(), ' ');
    for (std::size_t j = 0; j < b_vals.size(); ++j) {
      const bool bit = m.test(
          static_cast<std::size_t>(idx.encode(a_vals[i])),
          static_cast<std::size_t>(idx.encode(b_vals[j])));
      os << ' ' << std::string(col_names[j].size() - 1, ' ')
         << (bit ? '1' : '0');
    }
    os << '\n';
  }
  return os.str();
}

std::string render_summary(const Network& net) {
  std::ostringstream os;
  os << "n=" << net.n() << " roles=" << net.num_roles()
     << " D=" << net.domain_size() << " alive=" << net.total_alive();
  if (net.arcs_built()) os << " arc_ones=" << net.arc_ones();
  return os.str();
}

}  // namespace parsec::cdg
