// Rejection diagnostics: *why* was a sentence rejected?
//
// CDG makes this unusually easy (paper §1.4: "syntactic ambiguity is
// easy to spot in CDG"; the dual holds for failure): a rejected
// sentence has a role whose candidates were all eliminated, and the
// elimination trace attributes each removal to the unary constraint or
// consistency sweep that caused it.  This module runs a traced parse
// and reports the first role to empty together with its final
// elimination.
#pragma once

#include <string>
#include <vector>

#include "cdg/network.h"
#include "cdg/parser.h"

namespace parsec::cdg {

struct Diagnosis {
  bool accepted = false;
  /// Dense index of the first role left without candidates (-1 when
  /// accepted).
  int empty_role = -1;
  WordPos word = 0;
  RoleId role_id = 0;
  /// The last role value removed from that role, and what removed it.
  RoleValue last_removed{};
  std::string cause;
  TraceEvent::Kind kind = TraceEvent::Kind::SupportElimination;
  /// Complete elimination history of the parse, in order.
  std::vector<TraceEvent> events;
};

/// Parses `s` with tracing enabled and explains the outcome.
Diagnosis diagnose(const SequentialParser& parser, const Sentence& s);

/// Human-readable one-paragraph explanation.
std::string render_diagnosis(const Grammar& g, const Sentence& s,
                             const Diagnosis& d);

}  // namespace parsec::cdg
