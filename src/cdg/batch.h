// Structure-of-arrays sentence batching: one SIMD tile sweep filters
// up to eight same-shape sentences at once.
//
// The MasPar runs ONE instruction stream over thousands of PEs; the
// host analogue with a handful of cores is to widen the data instead.
// A role's domain row is typically only a few 64-bit words (W =
// ceil(D/64)), so a single-sentence sweep leaves most of an AVX-512
// vector idle.  Batching fixes the occupancy: B = simd::kMaxLanes = 8
// sentences of the same (grammar, length) interleave their bitset rows
// word-by-word —
//
//   batched word t  =  word t/8  of sentence lane t%8
//
// — so one 512-bit vector op advances all eight sentences by 64 role
// values, and one batched row is 8*W words = W cache lines, each line
// holding the SAME word index of all eight lanes.  The lane-periodic
// constants of simd::SweepConsts (lanes == 8) supply each lane's own
// broadcast booleans, and the per-lane SweepStats accumulators split
// the cost counters back out per sentence.
//
// Pipeline (BatchParser::parse):
//   1. per-lane prep through POOLED ordinary Networks (reinit reuses
//      each lane's arena, like engine::NetworkScratch): domain init,
//      unary propagation, truth-mask build.  Per-lane arc matrices are
//      never built — the initial arc row i of (ra, rb) is just the
//      partner domain masked by i's aliveness, so the interleaved rows
//      are synthesized straight from the interleaved domains;
//   2. gather: interleave domains and masks, synthesize arc rows that
//      are alive in at least one lane ("batch.gather" span; union-dead
//      rows are skipped and never read, so stale words from a previous
//      same-shape batch are harmless and no buffer-wide clear is paid);
//   3. batched binary sweeps, one consistency step per constraint
//      (the serial schedule, with the same provable-no-op shortcut),
//      then the joint fixpoint ("batch.binary" / "batch.filter") —
//      lanes that quiesce early ride along as no-ops (their words stop
//      changing), exactly like masked-off MasPar PEs;
//   4. per-lane results straight from the batch arena ("batch.scatter"):
//      domains, acceptance, counters.
//
// Bit-identity: every engine drives the same monotone filtering system
// to its unique fixpoint (confluence), so each lane's final domains are
// bit-identical to a sequential parse of that sentence alone — that is
// the tested gate.  Per-lane cost counters reflect the lockstep
// schedule (a lane is charged for sweeps it rides along with), so they
// are >= the sequential counters for the same sentence; wall-clock is
// what batching buys.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "cdg/constraint_eval.h"
#include "cdg/grammar.h"
#include "cdg/network.h"
#include "cdg/simd.h"
#include "util/bitset.h"

namespace parsec::cdg {

/// Per-sentence slice of a batched parse.
struct BatchLaneResult {
  bool accepted = false;
  int consistency_iterations = 0;  // batched sweeps run (same for all lanes)
  std::size_t alive_role_values = 0;
  std::vector<util::DynBitset> domains;  // one bitset per role
  NetworkCounters counters;
};

/// Batched parser for one grammar.  parse() accepts 1..simd::kMaxLanes
/// sentences of identical length; unfilled lanes stay all-zero and cost
/// nothing (dead rows are no-ops).  Reusable across calls; the
/// interleaved buffers are kept allocated between same-shape batches.
class BatchParser {
 public:
  explicit BatchParser(const Grammar& g, NetworkOptions opt = {});

  static constexpr std::size_t kLanes = simd::kMaxLanes;

  /// Parses the batch to the filtering fixpoint.  All sentences must
  /// have the same length; at most kLanes of them.
  std::vector<BatchLaneResult> parse(std::span<const Sentence> sentences);

  const Grammar& grammar() const { return *grammar_; }

 private:
  using Word = NetworkArena::Word;

  // Interleaved-row helpers (sW_ = W_ * kLanes words per batched row).
  Word* dom_row(int role) { return dom_.data() + role * sW_; }
  Word* udom_row(int role) { return udom_.data() + role * W_; }
  /// True when role value `i` is alive in at least one lane.
  bool union_alive(const Word* ud, std::size_t i) const {
    return (ud[i / NetworkArena::kWordBits] >>
            (i % NetworkArena::kWordBits)) &
           Word{1};
  }
  Word* sup_row(int role) { return sup_.data() + role * sW_; }
  Word* arc_row(std::size_t arc, std::size_t i) {
    return arcs_.data() + (arc * D_ + i) * sW_;
  }
  /// Interleaved masks: [slot][role][part] rows, part in {ax, ay, cx, cy}.
  Word* mask_row(std::size_t slot, int role, int part) {
    return masks_.data() +
           ((slot * static_cast<std::size_t>(R_) + role) * 4 + part) * sW_;
  }
  /// Row-major upper-triangle arc index (same formula as NetworkArena).
  std::size_t arc_index(int ra, int rb) const {
    const std::size_t R = static_cast<std::size_t>(R_);
    const std::size_t a = static_cast<std::size_t>(ra);
    const std::size_t b = static_cast<std::size_t>(rb);
    return a * R - a * (a + 1) / 2 + (b - a - 1);
  }

  void gather(std::span<Network> nets);
  void sweep_constraint(std::span<Network> nets, std::size_t slot,
                        std::size_t filled);
  int consistency_step(std::size_t filled);
  void eliminate(int role, std::size_t lane, std::size_t rv);

  const Grammar* grammar_;
  NetworkOptions opt_;
  std::vector<FactoredConstraint> unary_;
  std::vector<FactoredConstraint> binary_;

  // Shape of the current batch.
  int R_ = 0;
  std::size_t D_ = 0;
  std::size_t W_ = 0;   // words per single-sentence row
  std::size_t sW_ = 0;  // words per interleaved row (W_ * kLanes)
  std::size_t num_arcs_ = 0;
  std::vector<std::pair<int, int>> arc_pairs_;  // arc index -> (ra, rb)

  std::vector<Word> dom_;    // R interleaved domain rows
  std::vector<Word> udom_;   // R un-interleaved rows: per-word OR over lanes
  std::vector<Word> sup_;    // R interleaved support rows (scratch)
  std::vector<Word> arcs_;   // num_arcs * D interleaved arc rows
  std::vector<Word> masks_;  // slots * R * 4 interleaved mask rows
  std::vector<Word> vm_;     // one interleaved victim-mask row (scratch)

  // Per-lane parse state for the residual VM and result assembly.
  std::vector<const Sentence*> sents_;
  std::vector<NetworkCounters> lane_counters_;

  // Pooled per-lane prep networks, keyed by sentence length (reused via
  // Network::reinit, like engine::NetworkScratch — a serving workload
  // cycles a handful of lengths, and rebuilding eight networks per
  // shape change would dwarf the batch itself), and the consistency
  // clean-sweep shortcut (mirrors Network::clean_sweep_at_).
  std::map<std::size_t, std::vector<Network>> pool_;
  std::uint64_t clean_sweep_at_ = ~std::uint64_t{0};
};

}  // namespace parsec::cdg
