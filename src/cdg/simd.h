// Runtime-dispatched SIMD word kernels for the filtering sweeps.
//
// The masked binary sweep (cdg/kernels.h) is Boolean matrix work: per
// arc row it evaluates eight AND/ANDN/OR terms over the partner-side
// truth-mask words and folds the results into kill/keep/undecided
// words.  That inner loop is the host-side counterpart of the MasPar
// ACU broadcasting one instruction to every PE (paper §2.1): the same
// eight-term expression applied to every 64-bit word of the row.  This
// header widens it explicitly — AVX2 (4 words per op) and AVX-512 (8
// words per op, native vpopcntdq) variants behind a CPUID-resolved
// dispatch table, with a portable scalar fallback that is the reference
// semantics.  All tiers compute bit-identical results and bit-identical
// counter totals (the per-word algebra is associative-free: each word's
// outputs depend only on that word's inputs), so the dispatch tier is
// a pure throughput knob — tested by forcing every tier over the same
// corpus.
//
// Lanes: every kernel takes a `lanes` period (1 or kMaxLanes).  With
// lanes == 1 the broadcast constants are single words and the data is
// one row.  With lanes == 8 the data is a structure-of-arrays batch row
// — word index t holds word t/8 of sentence lane t%8 (cdg/batch.h) —
// and each constant pointer carries 8 per-lane words.  One AVX-512
// vector op then advances all 8 sentences by 64 role values at once,
// and the per-lane stats accumulators fall out of the vector popcounts
// for free (each 64-bit accumulator lane IS a sentence lane).
//
// Overriding the tier: the PARSEC_SIMD environment variable ("off" /
// "scalar" / "avx2" / "avx512", case-insensitive, read once) caps the
// CPUID-detected tier, and force_tier()/ScopedTier override both for
// tests and the ISA-ablation bench.  Requests above the detected tier
// clamp down — forcing "avx512" on an AVX2 host runs AVX2.
//
// (Unrelated to the PARSEC_SIMD *macro* in cdg/kernels.h, which is an
// `omp simd` pragma shorthand for the remaining autovectorized loops;
// the environment variable governs this dispatch table.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace parsec::cdg::simd {

using Word = std::uint64_t;

/// Dispatch tiers, ordered: a tier implies every lower tier works.
enum class IsaTier : int { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Stable lowercase name ("scalar", "avx2", "avx512") for metrics,
/// bench JSON and the PARSEC_SIMD parser.
const char* tier_name(IsaTier t);

/// Best tier this CPU supports (CPUID, computed once).  AVX-512 needs
/// avx512f + avx512vpopcntdq (the sweep counts pairs with vpopcntq).
IsaTier detected_tier();

/// Tier in effect: force_tier() override if set, else the detected
/// tier capped by the PARSEC_SIMD environment variable.
IsaTier active_tier();

/// Process-wide override (clamped to detected_tier()).  Not a
/// synchronization point: set it before parsing starts, as the
/// ISA-ablation bench and the forced-scalar tests do.
void force_tier(IsaTier t);
void clear_forced_tier();

/// RAII tier override for tests.
class ScopedTier {
 public:
  explicit ScopedTier(IsaTier t) { force_tier(t); }
  ~ScopedTier() { clear_forced_tier(); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;
};

/// SoA batch width (and the maximum `lanes` period).  Eight 64-bit
/// words = one AVX-512 vector = one cache line: a batch row is a
/// sequence of aligned 8-word groups, one word per sentence lane.
inline constexpr std::size_t kMaxLanes = 8;

/// Broadcast constants of one a-side row for the masked sweep's two
/// evaluation directions.  Each pointer holds `lanes` words, every word
/// all-ones or all-zero; word index t of the row uses constant word
/// t % lanes.  Derivation from the row's hoisted-mask bits (ax, ay,
/// cx, cy) and the constraint's residual flags: see
/// kernels.cpp::sweep_row_consts.
struct SweepConsts {
  const Word* nax;  // ~0 when the row fails ante_x (direction 1 vacuous)
  const Word* t1c;  // ~0 when cons_x holds with no consequent residual
  const Word* f1;   // ~0 when direction 1 can be falsified mask-only
  const Word* ncx;  // ~0 when the row fails cons_x
  const Word* nay;  // direction-2 mirrors of the four above
  const Word* t2c;
  const Word* f2;
  const Word* ncy;
};

/// Per-lane accumulators of one or more sweep_row calls.  The caller
/// zero-initializes once per attribution scope; kernels add into them.
struct SweepStats {
  Word masked[kMaxLanes] = {};  // pairs decided without a VM dispatch
  Word dead[kMaxLanes] = {};    // pairs the mask pass killed
  bool any_undecided = false;   // any nonzero word written to `undecided`
};

/// The dispatched primitives.  All pointers are to 64-bit word arrays;
/// `n` is a word count.  None of the kernels require alignment (the
/// arena provides 64-byte rows, letting aligned loads happen, but
/// ad-hoc callers with unaligned spans stay correct).
struct Ops {
  /// Masked-sweep row kernel: for each word t < n computes the
  /// kill/keep/undecided decision words from the partner-mask words
  /// (ax/ay/cx/cy) and the lane-periodic constants, applies the kill to
  /// row[t] in place, writes the undecided word to undecided[t], and
  /// accumulates per-lane masked/dead popcounts into `stats`.
  /// Requires n % lanes == 0; lanes is 1 or kMaxLanes.
  void (*sweep_row)(Word* row, const Word* ax, const Word* ay,
                    const Word* cx, const Word* cy, const SweepConsts& c,
                    std::size_t lanes, std::size_t n, Word* undecided,
                    SweepStats* stats);
  void (*andn)(Word* dst, const Word* src, std::size_t n);      // dst &= ~src
  void (*or_into)(Word* dst, const Word* src, std::size_t n);   // dst |= src
  void (*and_into)(Word* dst, const Word* src, std::size_t n);  // dst &= src
};

/// Dispatch table of the active tier (one relaxed atomic load plus an
/// array index; resolve once per sweep, not per row).
const Ops& ops();

/// Dispatch table of a specific tier, clamped to detected_tier() (the
/// cross-tier identity tests and the ISA ablation drive this).
const Ops& ops_for(IsaTier t);

}  // namespace parsec::cdg::simd
