#include "cdg/arena.h"

#include "resil/fault_plan.h"

namespace parsec::cdg {

namespace {

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

constexpr std::size_t round_up(std::size_t a, std::size_t b) {
  return ceil_div(a, b) * b;
}

}  // namespace

void NetworkArena::reshape(int roles, int domain_size,
                           std::size_t mask_slots) {
  assert(roles >= 0 && domain_size >= 0);
  R_ = roles;
  D_ = domain_size;
  mask_slots_ = mask_slots;
  const std::size_t R = static_cast<std::size_t>(R_);
  const std::size_t D = static_cast<std::size_t>(D_);
  stride_ = ceil_div(D, kWordBits);
  // Domain/mask/scratch rows are padded to whole cache lines so the
  // SIMD tile loads never split one (the pad words stay zero: spans are
  // sized by D and never write past word_count()).  Arc rows keep the
  // natural stride — the arc region dominates the allocation and its
  // rows are consumed by unaligned-tolerant kernels.
  dstride_ = round_up(stride_, kAlignWords);

  // Region sizes in words.  The int32/uint8 regions are carved out of
  // the same uint64 buffer; word alignment of each region start keeps
  // the reinterpret_casts valid.
  const std::size_t domains_w = R * dstride_;
  const std::size_t arcs_w = num_arcs() * D * stride_;
  const std::size_t counts_w = ceil_div(R * D * R * sizeof(std::int32_t),
                                        sizeof(Word));
  const std::size_t flags_w = ceil_div(R * D * sizeof(std::uint8_t),
                                       sizeof(Word));
  const std::size_t queue_w = ceil_div(2 * R * D * sizeof(std::int32_t),
                                       sizeof(Word));
  const std::size_t masks_w = mask_slots_ * R * dstride_;
  const std::size_t support_w = R * dstride_;

  // Every aligned-row region starts on a cache-line boundary relative
  // to the (aligned) base.
  domains_off_ = 0;
  arcs_off_ = domains_off_ + domains_w;
  counts_off_ = arcs_off_ + arcs_w;
  flags_off_ = counts_off_ + counts_w;
  queue_off_ = flags_off_ + flags_w;
  masks_off_ = round_up(queue_off_ + queue_w, kAlignWords);
  support_off_ = masks_off_ + masks_w;
  const std::size_t total = support_off_ + support_w;

  // Slack so base() can be bumped to the next 64-byte boundary
  // (std::vector only guarantees alignof(Word) = 8).
  const std::size_t need = total + kAlignWords - 1;
  if (need > buf_.capacity()) {
    // `arena.alloc` fault site: models the backing allocation failing
    // (the serve layer degrades it to RequestStatus::Faulted).  Only
    // genuine growth consults the site — same-shape reinits never
    // allocate and so can never fault here.
    if (resil::should_fire("arena.alloc"))
      throw resil::InjectedFault("arena: injected allocation failure");
    buf_.reserve(need);
    ++allocations_;
  }
  buf_.assign(need, Word{0});
  const auto addr = reinterpret_cast<std::uintptr_t>(buf_.data());
  base_pad_ =
      (round_up(addr, kRowAlignBytes) - addr) / sizeof(Word);

  arc_pairs_.clear();
  arc_pairs_.reserve(num_arcs());
  for (int a = 0; a < R_; ++a)
    for (int b = a + 1; b < R_; ++b) arc_pairs_.emplace_back(a, b);

  counts_valid_ = false;
}

}  // namespace parsec::cdg
