// Parse extraction (paper §1.4, Figs. 6-7).
//
// After propagation the CN compactly stores every remaining analysis.
// A *parse* selects one role value per role such that every pair is
// compatible under the arc matrices; the modifiees of the governor role
// values form the edges of the precedence graph (the CDG parse tree).
// Extraction is a backtracking search with an MRV variable order — the
// paper's "backtracking search to enumerate the parse graphs".
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "cdg/network.h"
#include "cdg/role_value.h"

namespace parsec::cdg {

/// One complete, arc-consistent choice of role values.
struct ParseSolution {
  /// assignment[role] is the chosen role value for dense role index
  /// `role` (see Network::role_index).
  std::vector<RoleValue> assignment;
};

/// One edge of the precedence graph: word `from` fills function `label`
/// for word `to` (`to == kNil` for the root).
struct PrecedenceEdge {
  WordPos from;
  RoleId role;
  LabelId label;
  WordPos to;
  bool operator==(const PrecedenceEdge&) const = default;
};

/// Enumerates up to `limit` parses.  Builds arcs if needed.
std::vector<ParseSolution> extract_parses(
    Network& net, std::size_t limit = std::numeric_limits<std::size_t>::max());

/// Number of parses, counting stops at `limit`.
std::size_t count_parses(Network& net,
                         std::size_t limit = std::numeric_limits<std::size_t>::max());

/// True iff at least one complete parse exists (exact acceptance, as
/// opposed to the necessary nonempty-domain condition).
bool has_parse(Network& net);

/// Reads the precedence graph of a solution (all roles' edges, governor
/// first).
std::vector<PrecedenceEdge> precedence_graph(const Network& net,
                                             const ParseSolution& sol);

/// Renders a solution in the style of Fig. 7:
///   Word=program Position=2 G=SUBJ-3 N=NP-1
std::string render_solution(const Network& net, const ParseSolution& sol);

/// Graphviz DOT rendering of the precedence graph: one node per word,
/// one labelled edge per governor/needs link (nil links rendered as a
/// ROOT marker on the node).  Pipe into `dot -Tpng` to draw Fig. 7.
std::string render_dot(const Network& net, const ParseSolution& sol);

}  // namespace parsec::cdg
