#include "cdg/parser.h"

#include "obs/trace.h"
#include "resil/fault_plan.h"

namespace parsec::cdg {

namespace {

/// Attaches the phase's counter deltas (effective-eval units, see
/// NetworkCounters) to a span.  No work when the span is inactive.
void attach_counter_delta(obs::Span& span, const NetworkCounters& before,
                          const NetworkCounters& after) {
  if (!span.active()) return;
  span.arg("effective_unary_evals",
           after.effective_unary_evals() - before.effective_unary_evals());
  span.arg("effective_binary_evals",
           after.effective_binary_evals() - before.effective_binary_evals());
  span.arg("eliminations", after.eliminations - before.eliminations);
  span.arg("arc_zeroings", after.arc_zeroings - before.arc_zeroings);
  span.arg("support_checks", after.support_checks - before.support_checks);
}

}  // namespace

SequentialParser::SequentialParser(const Grammar& g, ParseOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {}

Network SequentialParser::make_network(const Sentence& s) const {
  Network::Options nopt;
  nopt.prebuild_arcs = opt_.prebuild_arcs;
  return Network(*grammar_, s, nopt);
}

int SequentialParser::step_unary(Network& net, std::size_t idx) const {
  const FactoredConstraint& c = unary_.at(idx);
  return opt_.use_masks ? net.apply_unary(c) : net.apply_unary(c.full);
}

int SequentialParser::run_unary(Network& net) const {
  int eliminated = 0;
  for (std::size_t i = 0; i < unary_.size(); ++i)
    eliminated += step_unary(net, i);
  return eliminated;
}

int SequentialParser::step_binary(Network& net, std::size_t idx) const {
  const FactoredConstraint& c = binary_.at(idx);
  return opt_.use_masks ? net.apply_binary(c, idx) : net.apply_binary(c.full);
}

int SequentialParser::run_binary(Network& net) const {
  int zeroed = 0;
  for (std::size_t i = 0; i < binary_.size(); ++i) {
    zeroed += step_binary(net, i);
    if (opt_.consistency_after_each_binary) net.consistency_step();
  }
  return zeroed;
}

ParseResult SequentialParser::parse(Network& net, const CancelFn& cancel) const {
  // resil::checkpoint both polls `cancel` and hosts the engine
  // latency/hang fault sites, so the serial backend degrades the same
  // way the parallel ones do.
  auto cancelled = [&](ParseResult& r) {
    r.cancelled = true;
    r.accepted = false;
    r.alive_role_values = net.total_alive();
    r.counters = net.counters();
    return r;
  };
  ParseResult r;
  {
    obs::Span span("serial.unary");
    const NetworkCounters before = net.counters();
    for (std::size_t i = 0; i < unary_.size(); ++i) {
      if (resil::checkpoint(cancel)) return cancelled(r);
      step_unary(net, i);
    }
    attach_counter_delta(span, before, net.counters());
  }
  {
    obs::Span span("serial.binary");
    const NetworkCounters before = net.counters();
    for (std::size_t i = 0; i < binary_.size(); ++i) {
      if (resil::checkpoint(cancel)) return cancelled(r);
      step_binary(net, i);
      if (opt_.consistency_after_each_binary) net.consistency_step();
    }
    attach_counter_delta(span, before, net.counters());
  }
  // net.filter() with a cancellation poll per sweep.
  int sweeps = 0;
  {
    obs::Span span("serial.filter");
    const NetworkCounters before = net.counters();
    while (opt_.filter_sweeps < 0 || sweeps < opt_.filter_sweeps) {
      if (resil::checkpoint(cancel)) return cancelled(r);
      if (net.consistency_step() == 0) break;
      ++sweeps;
    }
    span.arg("sweeps", sweeps);
    attach_counter_delta(span, before, net.counters());
  }
  r.filter_sweeps_used = sweeps;
  r.accepted = net.all_roles_nonempty();
  r.alive_role_values = net.total_alive();
  r.ambiguous = false;
  for (int role = 0; role < net.num_roles(); ++role)
    if (net.domain(role).count() > 1) r.ambiguous = true;
  r.counters = net.counters();
  return r;
}

ParseResult SequentialParser::parse_sentence(const Sentence& s) const {
  Network net = make_network(s);
  return parse(net);
}

ParseResult SequentialParser::parse_any_tagging(
    const Lexicon& lexicon, const std::vector<std::string>& words,
    Sentence* chosen, std::size_t tagging_limit) const {
  const auto taggings = lexicon.taggings(words, tagging_limit);
  ParseResult first_result;
  bool have_first = false;
  for (const Sentence& s : taggings) {
    ParseResult r = parse_sentence(s);
    if (!have_first) {
      first_result = r;
      have_first = true;
      if (chosen) *chosen = s;
    }
    if (r.accepted) {
      if (chosen) *chosen = s;
      return r;
    }
  }
  return first_result;
}

}  // namespace parsec::cdg
