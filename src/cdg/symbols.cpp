#include "cdg/symbols.h"

#include <stdexcept>

namespace parsec::cdg {

int SymbolTable::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<int> SymbolTable::find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

int SymbolTable::at(std::string_view name) const {
  if (auto id = find(name)) return *id;
  throw std::out_of_range("unknown symbol: " + std::string(name));
}

}  // namespace parsec::cdg
