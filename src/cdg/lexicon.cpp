#include "cdg/lexicon.h"

#include <algorithm>
#include <stdexcept>

#include "cdg/grammar.h"

namespace parsec::cdg {

void Lexicon::add(std::string_view word, std::vector<CatId> cats) {
  if (cats.empty())
    throw std::invalid_argument("lexicon entry needs at least one category: " +
                                std::string(word));
  entries_[std::string(word)] = std::move(cats);
}

void Lexicon::add(Grammar& g, std::string_view word,
                  std::initializer_list<std::string_view> cat_names) {
  std::vector<CatId> cats;
  cats.reserve(cat_names.size());
  for (auto name : cat_names) cats.push_back(g.add_category(name));
  add(word, std::move(cats));
}

bool Lexicon::contains(std::string_view word) const {
  return entries_.find(std::string(word)) != entries_.end();
}

std::span<const CatId> Lexicon::categories(std::string_view word) const {
  auto it = entries_.find(std::string(word));
  if (it == entries_.end())
    throw std::out_of_range("word not in lexicon: " + std::string(word));
  return it->second;
}

std::vector<std::string> Lexicon::words() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [word, cats] : entries_) out.push_back(word);
  std::sort(out.begin(), out.end());
  return out;
}

Sentence Lexicon::tag(const std::vector<std::string>& words) const {
  Sentence s;
  s.words = words;
  s.cats.reserve(words.size());
  for (const auto& w : words) s.cats.push_back(categories(w).front());
  return s;
}

std::vector<Sentence> Lexicon::taggings(const std::vector<std::string>& words,
                                        std::size_t limit) const {
  std::vector<Sentence> out;
  Sentence cur;
  cur.words = words;
  cur.cats.assign(words.size(), 0);
  // Iterative cartesian product, preferred categories first.
  std::vector<std::span<const CatId>> choices;
  choices.reserve(words.size());
  for (const auto& w : words) choices.push_back(categories(w));
  std::vector<std::size_t> idx(words.size(), 0);
  while (out.size() < limit) {
    for (std::size_t i = 0; i < words.size(); ++i)
      cur.cats[i] = choices[i][idx[i]];
    out.push_back(cur);
    // odometer increment
    std::size_t i = words.size();
    while (i > 0) {
      --i;
      if (++idx[i] < choices[i].size()) break;
      idx[i] = 0;
      if (i == 0) return out;
    }
    if (words.empty()) return out;
  }
  return out;
}

}  // namespace parsec::cdg
