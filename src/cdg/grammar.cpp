#include "cdg/grammar.h"

#include <algorithm>
#include <stdexcept>

#include "cdg/constraint_parser.h"

namespace parsec::cdg {

namespace {
template <typename V>
void grow_to(std::vector<V>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}
}  // namespace

void Grammar::allow_label(RoleId r, LabelId l) {
  grow_to(role_label_, static_cast<std::size_t>(r) + 1);
  grow_to(role_label_[r], static_cast<std::size_t>(l) + 1);
  role_label_[r][l] = true;
}

void Grammar::allow_label_for_category(RoleId r, CatId c, LabelId l) {
  grow_to(role_cat_label_, static_cast<std::size_t>(r) + 1);
  grow_to(role_cat_label_[r], static_cast<std::size_t>(c) + 1);
  grow_to(role_cat_label_[r][c], static_cast<std::size_t>(l) + 1);
  role_cat_label_[r][c][l] = true;
  // The coarse table must still admit the label so that arc matrices
  // (built category-blind, Fig. 9) have a slot for it.
  allow_label(r, l);
}

void Grammar::add_constraint(Constraint c) {
  if (c.arity == 1)
    unary_.push_back(std::move(c));
  else if (c.arity == 2)
    binary_.push_back(std::move(c));
  else
    throw std::invalid_argument(
        "CDG constraints must be unary or binary (paper §1.3); got arity " +
        std::to_string(c.arity));
}

void Grammar::add_constraint_text(std::string_view name,
                                  std::string_view text) {
  Constraint c = parse_constraint(*this, text);
  c.name = std::string(name);
  add_constraint(std::move(c));
}

bool Grammar::coarse_allowed(RoleId r, LabelId l) const {
  return static_cast<std::size_t>(r) < role_label_.size() &&
         static_cast<std::size_t>(l) < role_label_[r].size() &&
         role_label_[r][l];
}

bool Grammar::label_allowed_any_cat(RoleId r, LabelId l) const {
  return coarse_allowed(r, l);
}

bool Grammar::label_allowed(RoleId r, CatId c, LabelId l) const {
  if (!coarse_allowed(r, l)) return false;
  // If any category refinement exists for this role, it is authoritative
  // for the labels it mentions.
  if (static_cast<std::size_t>(r) >= role_cat_label_.size()) return true;
  const auto& per_cat = role_cat_label_[r];
  // Does any category refine label l for this role?
  bool refined = false;
  for (const auto& labels : per_cat) {
    if (static_cast<std::size_t>(l) < labels.size() && labels[l]) {
      refined = true;
      break;
    }
  }
  if (!refined) return true;  // label never category-restricted
  return static_cast<std::size_t>(c) < per_cat.size() &&
         static_cast<std::size_t>(l) < per_cat[c].size() && per_cat[c][l];
}

std::vector<LabelId> Grammar::labels_for_role(RoleId r) const {
  std::vector<LabelId> out;
  for (LabelId l = 0; l < num_labels(); ++l)
    if (coarse_allowed(r, l)) out.push_back(l);
  return out;
}

int Grammar::max_labels_per_role() const {
  int best = 0;
  for (RoleId r = 0; r < num_roles(); ++r)
    best = std::max(best, static_cast<int>(labels_for_role(r).size()));
  return best;
}

}  // namespace parsec::cdg
