// Parser + type checker for the constraint surface syntax (paper §1.3).
//
// Turns s-expression text like
//
//   (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
//       (and (eq (lab x) ROOT) (eq (mod x) nil)))
//
// into a typed Constraint AST.  Symbols are resolved against the grammar:
// a bare atom in an (eq ...) is a label, role or category constant
// depending on the type of the opposite operand; `nil` is position 0;
// decimal literals are positions; `x` and `y` are the role-value
// variables.  The constraint's arity (unary/binary) is inferred from
// whether `y` occurs.
#pragma once

#include <stdexcept>
#include <string_view>

#include "cdg/constraint.h"
#include "util/sexpr.h"

namespace parsec::cdg {

class Grammar;

/// Raised on syntax or type errors, with source position and context.
struct ConstraintParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses one constraint from text.  Throws ConstraintParseError.
Constraint parse_constraint(const Grammar& g, std::string_view text);

/// Parses one constraint from an already-read s-expression.
Constraint parse_constraint(const Grammar& g, const util::Sexpr& sexpr);

}  // namespace parsec::cdg
