#include "cdg/diagnose.h"

#include <vector>

namespace parsec::cdg {

Diagnosis diagnose(const SequentialParser& parser, const Sentence& s) {
  Diagnosis d;
  Network net = parser.make_network(s);
  // Initial candidate counts, to replay the elimination stream.
  std::vector<std::size_t> remaining;
  for (int role = 0; role < net.num_roles(); ++role)
    remaining.push_back(net.domain(role).count());

  net.set_trace([&](const TraceEvent& e) { d.events.push_back(e); });
  parser.parse(net);
  net.filter();
  d.accepted = net.all_roles_nonempty();
  if (d.accepted) return d;

  // Root cause: the role that emptied *first* in the elimination
  // stream (later emptyings are usually cascades from it).
  for (const TraceEvent& e : d.events) {
    if (--remaining[e.role] > 0) continue;
    d.empty_role = e.role;
    d.word = net.word_of_role(e.role);
    d.role_id = net.role_id_of(e.role);
    d.last_removed = e.rv;
    d.cause = e.cause;
    d.kind = e.kind;
    break;
  }
  return d;
}

std::string render_diagnosis(const Grammar& g, const Sentence& s,
                             const Diagnosis& d) {
  if (d.accepted) return "accepted";
  if (d.empty_role < 0) return "rejected (no role emptied?)";
  std::string out = "rejected: word " + std::to_string(d.word) + " \"" +
                    s.word_at(d.word) + "\" has no candidate for its " +
                    g.role_name(d.role_id) + " role";
  if (!d.cause.empty()) {
    out += "; its last candidate " + to_string(g, d.last_removed) + " was ";
    out += d.kind == TraceEvent::Kind::UnaryElimination
               ? ("removed by constraint '" + d.cause + "'")
               : "removed by consistency maintenance (no compatible role "
                 "value remained on some arc)";
  }
  return out;
}

}  // namespace parsec::cdg
