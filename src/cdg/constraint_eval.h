// Constraint evaluation (paper §1.3-1.4).
//
// A constraint (if A C) is *violated* by a role-value binding iff the
// antecedent evaluates TRUE and the consequent FALSE; a violating role
// value (unary) or role-value pair (binary) is eliminated / its arc bit
// zeroed.  Both variables of a binary constraint must be tried in both
// assignments (x=a,y=b) and (x=b,y=a).
//
// Two evaluators are provided with identical semantics:
//   * a tree-walking interpreter over the AST, and
//   * a compiled flat-bytecode evaluator (CompiledConstraint), which the
//     parsers use in their inner loops (ablation: bench_constraint_eval).
#pragma once

#include <cstdint>
#include <vector>

#include "cdg/constraint.h"
#include "cdg/lexicon.h"
#include "cdg/role_value.h"
#include "cdg/types.h"

namespace parsec::cdg {

/// One bound role-value variable: the value itself plus the role/word
/// it lives in (needed by (role v) and (pos v)).
struct Binding {
  RoleValue rv;
  RoleId role = 0;
  WordPos pos = 0;
};

/// Everything a constraint may consult.  `y` is ignored for unary
/// constraints.
struct EvalContext {
  const Sentence* sentence = nullptr;
  Binding x;
  Binding y;
};

/// True iff the constraint is *satisfied* (not violated) by the binding.
bool eval_constraint(const Constraint& c, const EvalContext& ctx);

/// True iff the antecedent holds and the consequent fails.
inline bool violates(const Constraint& c, const EvalContext& ctx) {
  return !eval_constraint(c, ctx);
}

// ---------------------------------------------------------------------
// Compiled form: a short-circuiting bytecode run on a tiny stack
// machine.  Values are (int, valid) pairs; an `invalid` value models
// access to properties of the nil word — any comparison with it is
// false, which matches the paper's guarded usage
// ("(not (eq (mod x) nil))").  `and`/`or`/`if` compile to conditional
// branches so evaluation stops at the first decisive operand, like the
// tree-walking interpreter.
// ---------------------------------------------------------------------

struct CompiledConstraint {
  enum class BOp : std::uint8_t {
    PushLab,       // arg = var index
    PushMod,
    PushRole,
    PushPos,
    PushConst,     // arg = constant
    WordAt,        // pos -> word handle (invalid when out of range)
    CatOf,         // word -> category (propagates invalid)
    Eq, Gt, Lt,    // pop 2, push bool
    Not,           // pop 1, push bool
    JmpIfFalseKeep,  // top false: keep it, jump to arg; else pop, continue
    JmpIfTrueKeep,   // top true:  keep it, jump to arg; else pop, continue
    IfAnte,        // pop antecedent; false: push true, jump to arg
  };
  struct Instr {
    BOp op;
    std::int32_t arg;   // var index / constant / jump target (absolute pc)
  };
  std::vector<Instr> code;
  int arity = 1;
  std::string name;     // carried over from the Constraint, for traces
};

CompiledConstraint compile_constraint(const Constraint& c);

/// Same result as eval_constraint on the original AST.
bool eval_compiled(const CompiledConstraint& c, const EvalContext& ctx);

/// Compiles a whole constraint set.
std::vector<CompiledConstraint> compile_all(
    const std::vector<Constraint>& cs);

// ---------------------------------------------------------------------
// Factored form: compile-time predicate hoisting (the vectorized
// evaluation layer).
//
// Both the antecedent and the consequent of a constraint are (treated
// as) conjunctions.  Each top-level conjunct either mentions only x,
// only y, or genuinely couples the two variables.  The single-variable
// conjuncts are hoisted into standalone programs (`ante_x`, `ante_y`,
// `cons_x`, `cons_y`) that can be evaluated once per (role, role value)
// and materialized as packed truth bitmasks (kernels::MaskCache);
// coupling conjuncts stay behind as a *residual*, flagged per side.
//
// Soundness of the three-valued decision a sweep makes per pair, for
// one variable assignment (x bound to value a, y to value b):
//   * A is known false  iff  !ante_x(a) || !ante_y(b)      (any hoisted
//     conjunct false falsifies the conjunction)     => satisfied;
//   * A is known true   iff  ante_x(a) && ante_y(b) && !ante_residual;
//   * C is known true   iff  cons_x(a) && cons_y(b) && !cons_residual
//                                                    => satisfied;
//   * C is known false  iff  !cons_x(a) || !cons_y(b);
//   * violated iff A known true and C known false; anything else that
//     is not "satisfied" above is undecided and falls back to the full
//     bytecode program (`full`).
//
// Unary constraints get a different split: antecedent conjuncts that do
// not consult the role value itself (no (lab x) / (mod x) access — only
// (role x), (pos x), (cat (word ...)) and constants) are hoisted into
// `unary_guard`, a program that is constant across the role's whole
// domain.  When the guard is false the constraint is vacuously
// satisfied for every role value and the per-value sweep is skipped
// entirely; otherwise `unary_rest` — the constraint minus the guard
// conjuncts — is evaluated per value, with a result identical to
// `full`.
// ---------------------------------------------------------------------

/// One hoisted conjunct, compiled standalone, with the facts a mask
/// builder needs to evaluate it at the cheapest granularity: a conjunct
/// that never reads (mod v) has the same truth value for the whole
/// label run [l*(n+1), (l+1)*(n+1)) of the dense rv axis, one that
/// never reads (lab v) is constant across labels for a fixed modifiee,
/// and one that reads neither is constant across the entire domain.
/// `uses_site` marks access to (role v) / (pos v): a site-independent
/// term additionally has the same truth pattern for every role.
struct HoistedTerm {
  CompiledConstraint prog;
  bool uses_lab = false;   // reads (lab v)
  bool uses_mod = false;   // reads (mod v)
  bool uses_site = false;  // reads (role v) or (pos v)
};

struct FactoredConstraint {
  CompiledConstraint full;  // the whole constraint (residual/VM fallback)

  // Binary factoring: hoisted single-variable conjunctions.  An empty
  // program is an empty conjunction, i.e. constant true.
  CompiledConstraint ante_x, ante_y;
  CompiledConstraint cons_x, cons_y;
  bool ante_residual = false;  // antecedent keeps a pairwise conjunct
  bool cons_residual = false;  // consequent keeps one

  // The same four hoisted conjunctions, term by term, for the mask
  // builder (conjunction of a part's term patterns == the part).
  std::vector<HoistedTerm> ante_x_terms, ante_y_terms;
  std::vector<HoistedTerm> cons_x_terms, cons_y_terms;

  // Unary hoisting: role-value-independent antecedent guard plus the
  // remainder of the constraint (equal to `full` whenever the guard
  // holds).  Unused for binary constraints.
  CompiledConstraint unary_guard;
  CompiledConstraint unary_rest;

  int arity = 1;
  std::string name;  // carried over, for traces and reports
};

/// Hoisting pass over one constraint (compile + factor).
FactoredConstraint factor_constraint(const Constraint& c);

/// Factors a whole constraint set (engine construction time).
std::vector<FactoredConstraint> factor_all(const std::vector<Constraint>& cs);

/// Evaluates a hoisted part against a single binding.  The binding is
/// installed in BOTH variable slots, so a part hoisted from either the
/// x or the y side resolves correctly.  Empty code is constant true.
bool eval_hoisted(const CompiledConstraint& part, const Sentence& sent,
                  const Binding& b);

}  // namespace parsec::cdg
