// Constraint evaluation (paper §1.3-1.4).
//
// A constraint (if A C) is *violated* by a role-value binding iff the
// antecedent evaluates TRUE and the consequent FALSE; a violating role
// value (unary) or role-value pair (binary) is eliminated / its arc bit
// zeroed.  Both variables of a binary constraint must be tried in both
// assignments (x=a,y=b) and (x=b,y=a).
//
// Two evaluators are provided with identical semantics:
//   * a tree-walking interpreter over the AST, and
//   * a compiled flat-bytecode evaluator (CompiledConstraint), which the
//     parsers use in their inner loops (ablation: bench_constraint_eval).
#pragma once

#include <cstdint>
#include <vector>

#include "cdg/constraint.h"
#include "cdg/lexicon.h"
#include "cdg/role_value.h"
#include "cdg/types.h"

namespace parsec::cdg {

/// One bound role-value variable: the value itself plus the role/word
/// it lives in (needed by (role v) and (pos v)).
struct Binding {
  RoleValue rv;
  RoleId role = 0;
  WordPos pos = 0;
};

/// Everything a constraint may consult.  `y` is ignored for unary
/// constraints.
struct EvalContext {
  const Sentence* sentence = nullptr;
  Binding x;
  Binding y;
};

/// True iff the constraint is *satisfied* (not violated) by the binding.
bool eval_constraint(const Constraint& c, const EvalContext& ctx);

/// True iff the antecedent holds and the consequent fails.
inline bool violates(const Constraint& c, const EvalContext& ctx) {
  return !eval_constraint(c, ctx);
}

// ---------------------------------------------------------------------
// Compiled form: a short-circuiting bytecode run on a tiny stack
// machine.  Values are (int, valid) pairs; an `invalid` value models
// access to properties of the nil word — any comparison with it is
// false, which matches the paper's guarded usage
// ("(not (eq (mod x) nil))").  `and`/`or`/`if` compile to conditional
// branches so evaluation stops at the first decisive operand, like the
// tree-walking interpreter.
// ---------------------------------------------------------------------

struct CompiledConstraint {
  enum class BOp : std::uint8_t {
    PushLab,       // arg = var index
    PushMod,
    PushRole,
    PushPos,
    PushConst,     // arg = constant
    WordAt,        // pos -> word handle (invalid when out of range)
    CatOf,         // word -> category (propagates invalid)
    Eq, Gt, Lt,    // pop 2, push bool
    Not,           // pop 1, push bool
    JmpIfFalseKeep,  // top false: keep it, jump to arg; else pop, continue
    JmpIfTrueKeep,   // top true:  keep it, jump to arg; else pop, continue
    IfAnte,        // pop antecedent; false: push true, jump to arg
  };
  struct Instr {
    BOp op;
    std::int32_t arg;   // var index / constant / jump target (absolute pc)
  };
  std::vector<Instr> code;
  int arity = 1;
  std::string name;     // carried over from the Constraint, for traces
};

CompiledConstraint compile_constraint(const Constraint& c);

/// Same result as eval_constraint on the original AST.
bool eval_compiled(const CompiledConstraint& c, const EvalContext& ctx);

/// Compiles a whole constraint set.
std::vector<CompiledConstraint> compile_all(
    const std::vector<Constraint>& cs);

}  // namespace parsec::cdg
