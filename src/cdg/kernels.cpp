#include "cdg/kernels.h"

#include <algorithm>

namespace parsec::cdg::kernels {

void zero_row_col(NetworkArena& a, int role, int rv) {
  const int R = a.roles();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    if (role < other)
      a.arc(role, other).zero_row(static_cast<std::size_t>(rv));
    else
      a.arc(other, role).zero_col(static_cast<std::size_t>(rv));
  }
}

bool supported(const NetworkArena& a, int role, int rv) {
  const int R = a.roles();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    const bool ok =
        role < other
            ? a.arc(role, other).row_any(static_cast<std::size_t>(rv))
            : a.arc(other, role).col_any(static_cast<std::size_t>(rv));
    if (!ok) return false;
  }
  return true;
}

std::size_t count_supports(NetworkArena& a) {
  auto counts = a.support_counts();
  std::fill(counts.begin(), counts.end(), 0);
  const int R = a.roles();
  const std::size_t D = static_cast<std::size_t>(a.domain_size());
  std::size_t words_scanned = 0;
  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      const auto m = static_cast<const NetworkArena&>(a).arc(ra, rb);
      a.domain(ra).for_each([&](std::size_t i) {
        const auto row = m.row_span(i);
        words_scanned += row.word_count();
        // Row side: one popcount per alive value.  Arc bits exist only
        // at alive×alive positions, so the whole-row count equals the
        // count over the partner's alive values.
        counts[(static_cast<std::size_t>(ra) * D + i) * R + rb] =
            static_cast<std::int32_t>(row.count());
        // Column side: scatter the row's set bits onto the partners.
        row.for_each([&](std::size_t j) {
          ++counts[(static_cast<std::size_t>(rb) * D + j) * R + ra];
        });
      });
    }
  }
  return words_scanned;
}

void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::vector<int>& victims,
                     std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  domain.for_each([&](std::size_t rv) {
    ctx.x = Binding{ix.decode(static_cast<int>(rv)), rid, w};
    if (evals) ++*evals;
    if (!eval_compiled(c, ctx)) victims.push_back(static_cast<int>(rv));
  });
}

void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::span<std::uint8_t> flags,
                     std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  domain.for_each([&](std::size_t rv) {
    ctx.x = Binding{ix.decode(static_cast<int>(rv)), rid, w};
    if (evals) ++*evals;
    if (!eval_compiled(c, ctx)) flags[rv] = 1;
  });
}

int sweep_binary(const CompiledConstraint& c, const Sentence& sent,
                 util::BitMatrixView m, std::span<const int> alive_a,
                 std::span<const Binding> bind_a, std::span<const int> alive_b,
                 std::span<const Binding> bind_b, std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  int zeroed = 0;
  for (std::size_t ii = 0; ii < alive_a.size(); ++ii) {
    const std::size_t i = static_cast<std::size_t>(alive_a[ii]);
    for (std::size_t jj = 0; jj < alive_b.size(); ++jj) {
      const std::size_t j = static_cast<std::size_t>(alive_b[jj]);
      if (!m.test(i, j)) continue;
      // Both variable assignments (the constraint's x/y are symmetric
      // slots, not positional); both are charged up front.
      if (evals) *evals += 2;
      ctx.x = bind_a[ii];
      ctx.y = bind_b[jj];
      bool ok = eval_compiled(c, ctx);
      if (ok) {
        ctx.x = bind_b[jj];
        ctx.y = bind_a[ii];
        ok = eval_compiled(c, ctx);
      }
      if (!ok) {
        m.reset(i, j);
        ++zeroed;
      }
    }
  }
  return zeroed;
}

}  // namespace parsec::cdg::kernels
