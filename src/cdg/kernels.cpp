#include "cdg/kernels.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace parsec::cdg::kernels {

void zero_row_col(NetworkArena& a, int role, int rv) {
  using Word = NetworkArena::Word;
  const int R = a.roles();
  const std::size_t wi =
      static_cast<std::size_t>(rv) / NetworkArena::kWordBits;
  const Word bit = Word{1}
                   << (static_cast<std::size_t>(rv) % NetworkArena::kWordBits);
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    if (role < other) {
      a.arc(role, other).zero_row(static_cast<std::size_t>(rv));
    } else {
      // Column side: arc bits only exist at alive×alive positions, so a
      // bit in column rv can only live in a still-alive row of `other`
      // (a dead row was zeroed by its own elimination).  Walking the
      // partner's alive values replaces D strided per-row clears with
      // |alive| of them.
      util::BitMatrixView m = a.arc(other, role);
      const util::ConstBitSpan dom =
          static_cast<const NetworkArena&>(a).domain(other);
      dom.for_each([&](std::size_t r) { m.row_words(r)[wi] &= ~bit; });
    }
  }
}

void zero_rows_cols(NetworkArena& a, int role, std::span<const int> rvs,
                    util::BitSpan scratch) {
  using Word = NetworkArena::Word;
  const int R = a.roles();
  scratch.reset_all();
  for (int rv : rvs) scratch.set(static_cast<std::size_t>(rv));
  const Word* vm = scratch.words();
  const std::size_t W = scratch.word_count();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    if (role < other) {
      util::BitMatrixView m = a.arc(role, other);
      for (int rv : rvs) m.zero_row(static_cast<std::size_t>(rv));
    } else {
      // One ANDN pass per alive partner row clears every victim column
      // at once; per-victim strided clears would cost |rvs| passes.
      util::BitMatrixView m = a.arc(other, role);
      const util::ConstBitSpan dom =
          static_cast<const NetworkArena&>(a).domain(other);
      const auto andn = simd::ops().andn;
      dom.for_each([&](std::size_t r) { andn(m.row_words(r), vm, W); });
    }
  }
}

bool supported(const NetworkArena& a, int role, int rv) {
  const int R = a.roles();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    const bool ok =
        role < other
            ? a.arc(role, other).row_any(static_cast<std::size_t>(rv))
            : a.arc(other, role).col_any(static_cast<std::size_t>(rv));
    if (!ok) return false;
  }
  return true;
}

std::size_t count_supports(NetworkArena& a) {
  auto counts = a.support_counts();
  std::fill(counts.begin(), counts.end(), 0);
  const int R = a.roles();
  const std::size_t D = static_cast<std::size_t>(a.domain_size());
  std::size_t words_scanned = 0;
  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      const auto m = static_cast<const NetworkArena&>(a).arc(ra, rb);
      a.domain(ra).for_each([&](std::size_t i) {
        const auto row = m.row_span(i);
        words_scanned += row.word_count();
        // Row side: one popcount per alive value.  Arc bits exist only
        // at alive×alive positions, so the whole-row count equals the
        // count over the partner's alive values.
        counts[(static_cast<std::size_t>(ra) * D + i) * R + rb] =
            static_cast<std::int32_t>(row.count());
        // Column side: scatter the row's set bits onto the partners.
        row.for_each([&](std::size_t j) {
          ++counts[(static_cast<std::size_t>(rb) * D + j) * R + ra];
        });
      });
    }
  }
  return words_scanned;
}

void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::vector<int>& victims,
                     std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  domain.for_each([&](std::size_t rv) {
    ctx.x = Binding{ix.decode(static_cast<int>(rv)), rid, w};
    if (evals) ++*evals;
    if (!eval_compiled(c, ctx)) victims.push_back(static_cast<int>(rv));
  });
}

void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::span<std::uint8_t> flags,
                     std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  domain.for_each([&](std::size_t rv) {
    ctx.x = Binding{ix.decode(static_cast<int>(rv)), rid, w};
    if (evals) ++*evals;
    if (!eval_compiled(c, ctx)) flags[rv] = 1;
  });
}

int sweep_binary(const CompiledConstraint& c, const Sentence& sent,
                 util::BitMatrixView m, std::span<const int> alive_a,
                 std::span<const Binding> bind_a, std::span<const int> alive_b,
                 std::span<const Binding> bind_b, std::size_t* evals) {
  EvalContext ctx;
  ctx.sentence = &sent;
  int zeroed = 0;
  for (std::size_t ii = 0; ii < alive_a.size(); ++ii) {
    const std::size_t i = static_cast<std::size_t>(alive_a[ii]);
    for (std::size_t jj = 0; jj < alive_b.size(); ++jj) {
      const std::size_t j = static_cast<std::size_t>(alive_b[jj]);
      if (!m.test(i, j)) continue;
      // Both variable assignments (the constraint's x/y are symmetric
      // slots, not positional); both are charged up front.
      if (evals) *evals += 2;
      ctx.x = bind_a[ii];
      ctx.y = bind_b[jj];
      bool ok = eval_compiled(c, ctx);
      if (ok) {
        ctx.x = bind_b[jj];
        ctx.y = bind_a[ii];
        ok = eval_compiled(c, ctx);
      }
      if (!ok) {
        m.reset(i, j);
        ++zeroed;
      }
    }
  }
  return zeroed;
}

namespace {

/// Clears bit range [lo, hi) of `s`, word-wise.
void clear_run(util::BitSpan s, std::size_t lo, std::size_t hi) {
  using Word = NetworkArena::Word;
  constexpr std::size_t B = NetworkArena::kWordBits;
  Word* w = s.words();
  for (std::size_t wi = lo / B; wi * B < hi; ++wi) {
    const std::size_t base = wi * B;
    const std::size_t from = lo > base ? lo - base : 0;
    const std::size_t to = hi - base < B ? hi - base : B;
    const Word m = (to == B ? ~Word{0} : (Word{1} << to) - 1) &
                   ~((Word{1} << from) - 1);
    w[wi] &= ~m;
  }
}

}  // namespace

std::size_t MaskCache::ensure(NetworkArena& a, const FactoredConstraint& c,
                              std::size_t k, const Sentence& sent,
                              const RvIndexer& ix, int roles_per_word) {
  assert(k < gen_.size());
  if (built(a, k)) return 0;
  const int R = a.roles();
  const int L = ix.num_labels();
  const int M = ix.n() + 1;  // modifiee slots per label run
  const std::vector<HoistedTerm>* term_sets[kSlotsPerConstraint] = {
      &c.ante_x_terms, &c.ante_y_terms, &c.cons_x_terms, &c.cons_y_terms};
  std::size_t evals = 0;

  // ANDs one term's truth pattern into `msk` at the cheapest
  // granularity its dependences allow.  The dense rv axis is
  // label-major (rv = label*M + mod), so a mod-independent term holds
  // one value per whole M-bit label run, and a label-independent term
  // holds one value per mod offset across every run.
  const auto apply_term = [&](const HoistedTerm& t, util::BitSpan msk,
                              RoleId rid, WordPos pos,
                              util::ConstBitSpan dom) {
    Binding b;
    b.role = rid;
    b.pos = pos;
    if (t.uses_lab && t.uses_mod) {
      // Genuinely per-value: evaluate over values alive at build time.
      // Dead positions keep stale bits, but the sweep reads mask bits
      // only at alive rows and set arc bits (alive×alive), and domains
      // only ever shrink after the build.
      dom.for_each([&](std::size_t rv) {
        b.rv = ix.decode(static_cast<int>(rv));
        ++evals;
        if (!eval_hoisted(t.prog, sent, b)) msk.reset(rv);
      });
    } else if (t.uses_lab) {
      for (LabelId l = 0; l < L; ++l) {
        b.rv = RoleValue{l, 0};
        ++evals;
        if (!eval_hoisted(t.prog, sent, b))
          clear_run(msk, static_cast<std::size_t>(l) * M,
                    static_cast<std::size_t>(l + 1) * M);
      }
    } else if (t.uses_mod) {
      for (WordPos m = 0; m < M; ++m) {
        b.rv = RoleValue{0, m};
        ++evals;
        if (!eval_hoisted(t.prog, sent, b))
          for (LabelId l = 0; l < L; ++l)
            msk.reset(static_cast<std::size_t>(l) * M + m);
      }
    } else {
      // Constant over the whole domain (site-only or literal).
      ++evals;
      b.rv = RoleValue{0, 0};
      if (!eval_hoisted(t.prog, sent, b)) msk.reset_all();
    }
  };

  for (std::size_t p = 0; p < kSlotsPerConstraint; ++p) {
    const std::size_t slot = k * kSlotsPerConstraint + p;
    const std::vector<HoistedTerm>& terms = *term_sets[p];
    // Site-independent terms have one truth pattern shared by every
    // role: build it once on role 0's span, then word-copy.  Per-value
    // terms are excluded (they are evaluated over each role's own
    // alive set), as are site-dependent ones.
    util::BitSpan m0 = a.mask(slot, 0);
    m0.set_all();
    bool per_role = false;
    for (const HoistedTerm& t : terms) {
      if (t.uses_site || (t.uses_lab && t.uses_mod))
        per_role = true;
      else
        apply_term(t, m0, 0, 1, a.domain(0));  // site unread by the term
    }
    for (int role = 1; role < R; ++role) a.mask(slot, role).copy_from(m0);
    if (!per_role) continue;
    for (int role = 0; role < R; ++role) {
      const RoleId rid = static_cast<RoleId>(role % roles_per_word);
      const WordPos pos = static_cast<WordPos>(role / roles_per_word + 1);
      for (const HoistedTerm& t : terms)
        if (t.uses_site || (t.uses_lab && t.uses_mod))
          apply_term(t, a.mask(slot, role), rid, pos, a.domain(role));
    }
  }
  gen_[k] = a.reinits() + 1;
  ++builds_;
  return evals;
}

namespace {

SweepTiling g_tiling{};

/// Fills the 8 broadcast constant words (each all-ones or all-zero) of
/// one a-side row from its hoisted-mask bits, in simd::SweepConsts
/// member order.  Folding the row booleans into constants here is what
/// makes the word kernel a fixed 8-term expression — the same
/// instruction stream for every row, the ACU-broadcast shape.
inline void sweep_row_consts(const FactoredConstraint& c,
                             const FactoredMasks& ma, std::size_t i,
                             NetworkArena::Word* k) {
  using Word = NetworkArena::Word;
  const bool ax = ma.ante_x.test(i), ay = ma.ante_y.test(i);
  const bool cx = ma.cons_x.test(i), cy = ma.cons_y.test(i);
  const bool f1_on = ax && !c.ante_residual;
  const bool f2_on = ay && !c.ante_residual;
  const bool t1c = cx && !c.cons_residual;
  const bool t2c = cy && !c.cons_residual;
  k[0] = ax ? Word{0} : ~Word{0};    // nax
  k[1] = t1c ? ~Word{0} : Word{0};   // t1c
  k[2] = f1_on ? ~Word{0} : Word{0}; // f1
  k[3] = cx ? Word{0} : ~Word{0};    // ncx
  k[4] = ay ? Word{0} : ~Word{0};    // nay
  k[5] = t2c ? ~Word{0} : Word{0};   // t2c
  k[6] = f2_on ? ~Word{0} : Word{0}; // f2
  k[7] = cy ? Word{0} : ~Word{0};    // ncy
}

}  // namespace

void set_sweep_tiling(const SweepTiling& t) {
  g_tiling.rows = t.rows < 1 ? 1
                  : t.rows > kMaxSweepTileRows ? kMaxSweepTileRows
                                               : t.rows;
}

SweepTiling sweep_tiling() { return g_tiling; }

int sweep_binary_masked(const FactoredConstraint& c, const Sentence& sent,
                        util::BitMatrixView m, util::ConstBitSpan dom_a,
                        const FactoredMasks& ma, RoleId rid_a, WordPos wa,
                        const FactoredMasks& mb, RoleId rid_b, WordPos wb,
                        const RvIndexer& ix, const MaskedCounters& counters,
                        bool apply_residual) {
  using Word = NetworkArena::Word;
  const std::size_t W = m.row_word_count();
  // Partner-side mask words (bit j = does b's value j satisfy the part).
  const Word* AX = mb.ante_x.words();
  const Word* AY = mb.ante_y.words();
  const Word* CX = mb.cons_x.words();
  const Word* CY = mb.cons_y.words();
  const simd::Ops& ops = simd::ops();
  EvalContext ctx;
  ctx.sentence = &sent;
  std::size_t vm = 0, masked = 0, tiles = 0, lane_words = 0;
  int zeroed = 0;

  // Tile staging, all on the stack: the vector phase writes each row's
  // undecided word image here, the residual phase drains it.  Wide rows
  // shrink the block height so a tile never overflows the budget (the
  // degenerate W > kStageWords case would need D > 128k bits; the
  // invariant checker's shapes are far below that, but clamp anyway).
  constexpr std::size_t kStageWords = 2048;
  static_assert(kStageWords >= kMaxSweepTileRows);
  Word stage[kStageWords];
  Word consts[kMaxSweepTileRows][8];
  std::size_t rows_idx[kMaxSweepTileRows];
  bool rows_und[kMaxSweepTileRows];
  const std::size_t Wc = W > kStageWords ? kStageWords : W;
  const std::size_t row_cap =
      Wc ? std::min(kMaxSweepTileRows, kStageWords / Wc) : std::size_t{1};
  const std::size_t tile_cap =
      std::max<std::size_t>(1, std::min(g_tiling.rows, row_cap));

  const std::size_t Dn = dom_a.size();
  std::size_t i = dom_a.find_first();
  while (i < Dn) {
    // Gather the tile: up to tile_cap alive rows and their constants.
    std::size_t nrows = 0;
    while (i < Dn && nrows < tile_cap) {
      rows_idx[nrows] = i;
      sweep_row_consts(c, ma, i, consts[nrows]);
      ++nrows;
      i = dom_a.find_next_from(i + 1);
    }
    // Vector phase: one uninterrupted dispatched pass per row, kills
    // applied in place, undecided words staged.
    bool tile_und = false;
    for (std::size_t r = 0; r < nrows; ++r) {
      const Word* k = consts[r];
      const simd::SweepConsts kc{k + 0, k + 1, k + 2, k + 3,
                                 k + 4, k + 5, k + 6, k + 7};
      simd::SweepStats st;
      ops.sweep_row(m.row_words(rows_idx[r]), AX, AY, CX, CY, kc, 1, Wc,
                    stage + r * Wc, &st);
      // Clamped-width leftover (W > kStageWords only): finish the row
      // scalar-chunked with immediate residual semantics via a second
      // dispatched pass per chunk.
      for (std::size_t w0 = Wc; w0 < W; w0 += Wc) {
        const std::size_t nw = std::min(Wc, W - w0);
        simd::SweepStats st2;
        ops.sweep_row(m.row_words(rows_idx[r]) + w0, AX + w0, AY + w0,
                      CX + w0, CY + w0, kc, 1, nw, stage + r * Wc, &st2);
        masked += st2.masked[0];
        zeroed += static_cast<int>(st2.dead[0]);
        lane_words += nw;
        if (apply_residual && st2.any_undecided) {
          Word* row = m.row_words(rows_idx[r]);
          const Binding bind_a{
              ix.decode(static_cast<int>(rows_idx[r])), rid_a, wa};
          for (std::size_t wi = 0; wi < nw; ++wi) {
            Word u = stage[r * Wc + wi];
            while (u) {
              const std::size_t bit =
                  static_cast<std::size_t>(std::countr_zero(u));
              u &= u - 1;
              const std::size_t j =
                  (w0 + wi) * NetworkArena::kWordBits + bit;
              vm += 2;
              ctx.x = bind_a;
              ctx.y = Binding{ix.decode(static_cast<int>(j)), rid_b, wb};
              bool ok = eval_compiled(c.full, ctx);
              if (ok) {
                std::swap(ctx.x, ctx.y);
                ok = eval_compiled(c.full, ctx);
              }
              if (!ok) {
                row[w0 + wi] &= ~(Word{1} << bit);
                ++zeroed;
              }
            }
          }
        }
      }
      masked += st.masked[0];
      zeroed += static_cast<int>(st.dead[0]);
      lane_words += Wc;
      rows_und[r] = st.any_undecided;
      tile_und |= st.any_undecided;
    }
    ++tiles;
    // Residual phase: the bytecode VM drains the staged undecided
    // bits, rows ascending, bits ascending within each row.  A pair's
    // verdict depends only on (sentence, i, j) — no matrix state — so
    // the phase split cannot change the final bits or the counters.
    if (apply_residual && tile_und) {
      for (std::size_t r = 0; r < nrows; ++r) {
        if (!rows_und[r]) continue;
        const std::size_t ri = rows_idx[r];
        Word* row = m.row_words(ri);
        const Binding bind_a{ix.decode(static_cast<int>(ri)), rid_a, wa};
        const Word* und = stage + r * Wc;
        for (std::size_t wi = 0; wi < Wc; ++wi) {
          Word u = und[wi];
          while (u) {
            const std::size_t bit =
                static_cast<std::size_t>(std::countr_zero(u));
            u &= u - 1;
            const std::size_t j = wi * NetworkArena::kWordBits + bit;
            vm += 2;
            ctx.x = bind_a;
            ctx.y = Binding{ix.decode(static_cast<int>(j)), rid_b, wb};
            bool ok = eval_compiled(c.full, ctx);
            if (ok) {
              std::swap(ctx.x, ctx.y);
              ok = eval_compiled(c.full, ctx);
            }
            if (!ok) {
              row[wi] &= ~(Word{1} << bit);
              ++zeroed;
            }
          }
        }
      }
    }
  }
  if (counters.vm_evals) *counters.vm_evals += vm;
  if (counters.masked) *counters.masked += masked;
  if (counters.tile_sweeps) *counters.tile_sweeps += tiles;
  if (counters.lane_words) *counters.lane_words += lane_words;
  return zeroed;
}

namespace {

/// Shared guard step of the masked unary kernels: true when the
/// role-value-independent guard fails, i.e. the whole domain is
/// vacuously satisfied and the per-value sweep can be skipped.
bool unary_guard_fails(const FactoredConstraint& c, const Sentence& sent,
                       RoleId rid, WordPos w, util::ConstBitSpan domain,
                       const MaskedCounters& counters) {
  if (c.unary_guard.code.empty()) return false;
  if (counters.build_evals) ++*counters.build_evals;
  const Binding b{RoleValue{}, rid, w};  // rv unused: guard is rv-free
  if (eval_hoisted(c.unary_guard, sent, b)) return false;
  if (counters.masked) *counters.masked += domain.count();
  return true;
}

}  // namespace

void propagate_unary_masked(const FactoredConstraint& c, const Sentence& sent,
                            const RvIndexer& ix, RoleId rid, WordPos w,
                            util::ConstBitSpan domain,
                            std::vector<int>& victims,
                            const MaskedCounters& counters) {
  if (unary_guard_fails(c, sent, rid, w, domain, counters)) return;
  propagate_unary(c.unary_rest, sent, ix, rid, w, domain, victims,
                  counters.vm_evals);
}

void propagate_unary_masked(const FactoredConstraint& c, const Sentence& sent,
                            const RvIndexer& ix, RoleId rid, WordPos w,
                            util::ConstBitSpan domain,
                            std::span<std::uint8_t> flags,
                            const MaskedCounters& counters) {
  if (unary_guard_fails(c, sent, rid, w, domain, counters)) return;
  propagate_unary(c.unary_rest, sent, ix, rid, w, domain, flags,
                  counters.vm_evals);
}

void support_mask(const NetworkArena& a, int role, util::BitSpan out) {
  using Word = NetworkArena::Word;
  assert(out.size() == static_cast<std::size_t>(a.domain_size()));
  // Dead values are unsupported by definition (their rows/columns are
  // zeroed), so start from the domain and only ever clear bits.
  out.copy_from(a.domain(role));
  const int R = a.roles();
  const std::size_t W = out.word_count();
  Word* ow = out.words();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    if (role < other) {
      // Row side: one row_any bit per value still in the running.
      // Iterating `out` (not the domain) skips values an earlier arc
      // already disqualified.
      const auto m = a.arc(role, other);
      out.for_each([&](std::size_t rv) {
        if (!m.row_any(rv)) out.reset(rv);
      });
    } else {
      // Column side: OR-fold the partner's ALIVE rows word-by-word,
      // turning D strided per-column probes into one sequential pass
      // proportional to the live network (dead rows are all-zero and
      // contribute nothing).  Blocked so the accumulator stays on the
      // stack for any domain size.
      const auto m = a.arc(other, role);
      const util::ConstBitSpan dom_b = a.domain(other);
      const simd::Ops& ops = simd::ops();
      constexpr std::size_t kBlock = 64;
      Word acc[kBlock];
      for (std::size_t w0 = 0; w0 < W; w0 += kBlock) {
        const std::size_t nb = std::min(kBlock, W - w0);
        for (std::size_t b = 0; b < nb; ++b) acc[b] = 0;
        dom_b.for_each(
            [&](std::size_t r) { ops.or_into(acc, m.row_words(r) + w0, nb); });
        ops.and_into(ow + w0, acc, nb);
      }
    }
  }
}

}  // namespace parsec::cdg::kernels
