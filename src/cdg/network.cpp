#include "cdg/network.h"

#include <cassert>
#include <stdexcept>

#include "cdg/kernels.h"
#include "obs/trace.h"

namespace parsec::cdg {

Network::Network(const Grammar& g, const Sentence& s, Options opt)
    : grammar_(&g), sentence_(s), indexer_(s.size(), g.num_labels()) {
  if (s.size() <= 0) throw std::invalid_argument("empty sentence");
  const std::size_t num_binary = g.binary_constraints().size();
  arena_.reshape(num_roles(), domain_size(),
                 kernels::MaskCache::kSlotsPerConstraint * num_binary);
  mask_cache_.configure(num_binary);
  init_domains();
  if (opt.prebuild_arcs) build_arcs();
}

void Network::init_domains() {
  const Grammar& g = *grammar_;
  const int R = num_roles();
  // Initial domains (paper §1.2, Fig. 1): every (label, modifiee) pair
  // such that the label is legal for the role (table T, refined by the
  // word's category) and the modifiee is not the word itself.
  for (int role = 0; role < R; ++role) {
    util::BitSpan d = arena_.domain(role);
    d.reset_all();
    const WordPos w = word_of_role(role);
    const RoleId rid = role_id_of(role);
    const CatId cat = sentence_.cat_at(w);
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      if (!g.label_allowed(rid, cat, l)) continue;
      // Label-major rv axis: label l's modifiees are one contiguous
      // run.  Set the whole run word-wise, then carve out m == w (no
      // word ever modifies itself).
      const auto lo =
          static_cast<std::size_t>(indexer_.encode(RoleValue{l, 0}));
      d.set_run(lo, lo + static_cast<std::size_t>(n()) + 1);
      d.reset(lo + static_cast<std::size_t>(w));
    }
  }
}

bool Network::reinit(const Sentence& s) {
  if (s.size() != n()) return false;
  sentence_ = s;
  counters_ = NetworkCounters{};
  trace_ = nullptr;
  current_kind_ = TraceEvent::Kind::SupportElimination;
  current_cause_ = "consistency";
  clean_sweep_at_ = kNoCleanSweep;
  arena_.reinit();
  init_domains();
  if (arcs_built_) fill_arcs();
  return true;
}

std::vector<RoleValue> Network::alive_values(int role) const {
  std::vector<RoleValue> out;
  domain(role).for_each(
      [&](std::size_t rv) { out.push_back(indexer_.decode(static_cast<int>(rv))); });
  return out;
}

void Network::build_arcs() {
  if (arcs_built_) return;
  fill_arcs();
  arcs_built_ = true;
}

void Network::fill_arcs() {
  const int R = num_roles();
  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      util::BitMatrixView m = arena_.arc(ra, rb);
      m.reset_all();
      // Alive rows get a word-for-word copy of the partner's domain:
      // bit (i, j) is set iff both role values are alive.
      const util::ConstBitSpan db = domain(rb);
      domain(ra).for_each(
          [&](std::size_t i) { m.row_span(i).copy_from(db); });
    }
  }
  arena_.set_counts_valid(false);
}

util::ConstBitMatrixView Network::arc_matrix(int ra, int rb) const {
  assert(arcs_built_);
  return arena_.arc(ra, rb);
}

bool Network::arc_allows(int ra, int rv_a, int rb, int rv_b) const {
  assert(arcs_built_);
  if (ra < rb)
    return arena_.arc(ra, rb).test(static_cast<std::size_t>(rv_a),
                                   static_cast<std::size_t>(rv_b));
  return arena_.arc(rb, ra).test(static_cast<std::size_t>(rv_b),
                                 static_cast<std::size_t>(rv_a));
}

void Network::arc_forbid(int ra, int rv_a, int rb, int rv_b) {
  assert(arcs_built_);
  if (ra < rb)
    arena_.arc(ra, rb).reset(static_cast<std::size_t>(rv_a),
                             static_cast<std::size_t>(rv_b));
  else
    arena_.arc(rb, ra).reset(static_cast<std::size_t>(rv_b),
                             static_cast<std::size_t>(rv_a));
  ++counters_.arc_zeroings;
  arena_.set_counts_valid(false);
}

void Network::refresh_alive_cache() {
  const int R = num_roles();
  alive_off_.resize(static_cast<std::size_t>(R) + 1);
  alive_flat_.clear();
  bind_flat_.clear();
  for (int role = 0; role < R; ++role) {
    alive_off_[role] = alive_flat_.size();
    domain(role).for_each([&](std::size_t rv) {
      alive_flat_.push_back(static_cast<int>(rv));
      bind_flat_.push_back(binding(role, static_cast<int>(rv)));
    });
  }
  alive_off_[R] = alive_flat_.size();
}

int Network::apply_unary(const CompiledConstraint& c) {
  assert(c.arity == 1);
  current_kind_ = TraceEvent::Kind::UnaryElimination;
  // Assign in place (a conditional expression would materialize a
  // temporary string and put an allocation on the steady-state path).
  if (c.name.empty())
    current_cause_ = "unary constraint";
  else
    current_cause_.assign(c.name);
  int eliminated = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) {
    // Collect first: eliminating while iterating the bitset is fine for
    // bits we've already passed, but collecting keeps the sweep order
    // explicit and matches the parallel semantics (all checks see the
    // same pre-sweep state for a single constraint).
    victims_.clear();
    kernels::propagate_unary(c, sentence_, indexer_, role_id_of(role),
                             word_of_role(role), domain(role), victims_,
                             &counters_.unary_evals);
    eliminated += eliminate_batch(role, victims_);
  }
  return eliminated;
}

int Network::apply_binary(const CompiledConstraint& c) {
  assert(c.arity == 2);
  build_arcs();
  int zeroed = 0;
  const int R = num_roles();

  // Pre-decode alive bindings per role once; the pair loop is the hot
  // path (O(n^4) evaluations per constraint, paper §1.4).
  refresh_alive_cache();

  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      zeroed += kernels::sweep_binary(
          c, sentence_, arena_.arc(ra, rb), alive_list(ra), binding_list(ra),
          alive_list(rb), binding_list(rb), &counters_.binary_evals);
    }
  }
  counters_.arc_zeroings += static_cast<std::size_t>(zeroed);
  if (zeroed) arena_.set_counts_valid(false);
  return zeroed;
}

int Network::apply_unary(const FactoredConstraint& c) {
  assert(c.arity == 1);
  current_kind_ = TraceEvent::Kind::UnaryElimination;
  if (c.name.empty())
    current_cause_ = "unary constraint";
  else
    current_cause_.assign(c.name);
  kernels::MaskedCounters mc;
  mc.vm_evals = &counters_.unary_evals;
  mc.masked = &counters_.masked_unary_decided;
  mc.build_evals = &counters_.mask_build_evals;
  int eliminated = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) {
    victims_.clear();
    kernels::propagate_unary_masked(c, sentence_, indexer_, role_id_of(role),
                                    word_of_role(role), domain(role), victims_,
                                    mc);
    eliminated += eliminate_batch(role, victims_);
  }
  return eliminated;
}

void Network::ensure_masks(const FactoredConstraint& c, std::size_t slot) {
  if (mask_cache_.built(arena_, slot)) return;  // hit: no span, no work
  obs::Span span("cdg.mask_build");
  const std::size_t evals = mask_cache_.ensure(arena_, c, slot, sentence_,
                                               indexer_, roles_per_word());
  counters_.mask_build_evals += evals;
  span.arg("slot", static_cast<std::int64_t>(slot));
  span.arg("build_evals", evals);
}

int Network::apply_binary(const FactoredConstraint& c, std::size_t slot,
                          bool apply_residual) {
  assert(c.arity == 2);
  build_arcs();
  ensure_masks(c, slot);
  kernels::MaskedCounters mc;
  mc.vm_evals = &counters_.binary_evals;
  mc.masked = &counters_.masked_binary_pairs;
  mc.tile_sweeps = &counters_.tile_sweeps;
  mc.lane_words = &counters_.simd_lane_words;
  int zeroed = 0;
  const int R = num_roles();
  for (int ra = 0; ra < R; ++ra) {
    const kernels::FactoredMasks ma = masks(slot, ra);
    for (int rb = ra + 1; rb < R; ++rb) {
      zeroed += kernels::sweep_binary_masked(
          c, sentence_, arena_.arc(ra, rb), domain(ra), ma, role_id_of(ra),
          word_of_role(ra), masks(slot, rb), role_id_of(rb), word_of_role(rb),
          indexer_, mc, apply_residual);
    }
  }
  counters_.arc_zeroings += static_cast<std::size_t>(zeroed);
  if (zeroed) arena_.set_counts_valid(false);
  return zeroed;
}

void Network::eliminate(int role, int rv) {
  util::BitSpan d = arena_.domain(role);
  if (!d.test(static_cast<std::size_t>(rv))) return;
  d.reset(static_cast<std::size_t>(rv));
  ++counters_.eliminations;
  if (trace_)
    trace_(TraceEvent{current_kind_, current_cause_, role,
                      indexer_.decode(rv)});
  arena_.set_counts_valid(false);
  if (!arcs_built_) return;
  kernels::zero_row_col(arena_, role, rv);
}

int Network::eliminate_batch(int role, std::span<const int> rvs) {
  if (rvs.empty()) return 0;
  util::BitSpan d = arena_.domain(role);
  int killed = 0;
  for (int rv : rvs) {
    if (!d.test(static_cast<std::size_t>(rv))) continue;
    d.reset(static_cast<std::size_t>(rv));
    ++counters_.eliminations;
    ++killed;
    if (trace_)
      trace_(TraceEvent{current_kind_, current_cause_, role,
                        indexer_.decode(rv)});
  }
  if (!killed) return 0;
  arena_.set_counts_valid(false);
  if (!arcs_built_) return killed;
  // Small batches: the fused column pass costs one word-row ANDN per
  // alive partner value regardless of batch size, so it only wins once
  // the batch exceeds the row width in words.
  if (rvs.size() <= d.word_count()) {
    for (int rv : rvs) kernels::zero_row_col(arena_, role, rv);
  } else {
    kernels::zero_rows_cols(arena_, role, rvs, arena_.support_scratch(role));
  }
  return killed;
}

bool Network::supported(int role, int rv) {
  assert(arcs_built_);
  ++counters_.support_checks;
  return kernels::supported(arena_, role, rv);
}

util::ConstBitSpan Network::support_mask(int role) {
  assert(arcs_built_);
  counters_.support_checks += domain(role).count();
  kernels::support_mask(arena_, role, arena_.support_scratch(role));
  return arena_.support_scratch(role);
}

int Network::consistency_step() {
  build_arcs();
  // Support can only be lost through eliminations or arc zeroings; if
  // neither counter moved since the last sweep that found nothing, this
  // sweep is provably a no-op.
  const std::uint64_t muts = counters_.eliminations + counters_.arc_zeroings;
  if (muts == clean_sweep_at_) return 0;
  current_kind_ = TraceEvent::Kind::SupportElimination;
  current_cause_ = "consistency";
  int eliminated = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) {
    // Word-parallel sweep: one support bitmask per role instead of one
    // row/column probe per value.  Victims (alive & ~supported) come out
    // in the same ascending order as the per-value formulation, and the
    // mask sees every elimination made for earlier roles, so cascading
    // behaviour within the sweep is unchanged.  (eliminate_batch reuses
    // the support scratch row — after the victims are extracted.)
    victims_.clear();
    const util::ConstBitSpan sup = support_mask(role);
    domain(role).for_each([&](std::size_t rv) {
      if (!sup.test(rv)) victims_.push_back(static_cast<int>(rv));
    });
    eliminated += eliminate_batch(role, victims_);
  }
  if (eliminated == 0) clean_sweep_at_ = muts;
  return eliminated;
}

int Network::filter(int max_iters) {
  int sweeps = 0;
  while (max_iters < 0 || sweeps < max_iters) {
    if (consistency_step() == 0) break;
    ++sweeps;
  }
  return sweeps;
}

bool Network::all_roles_nonempty() const {
  const int R = num_roles();
  for (int role = 0; role < R; ++role)
    if (domain(role).none()) return false;
  return true;
}

bool Network::check_invariants() const {
  const int R = num_roles();
  const std::size_t D = static_cast<std::size_t>(domain_size());
  // Layout invariant for the SIMD tile loads: domain, mask and
  // support-scratch rows start on cache-line boundaries.
  auto aligned = [](const NetworkArena::Word* p) {
    return reinterpret_cast<std::uintptr_t>(p) %
               NetworkArena::kRowAlignBytes ==
           0;
  };
  for (int r = 0; r < R; ++r) {
    if (!aligned(domain(r).words())) return false;
    if (!aligned(arena_.support_scratch(r).words())) return false;
    for (std::size_t s = 0; s < arena_.mask_slots(); ++s)
      if (!aligned(arena_.mask(s, r).words())) return false;
  }
  if (!arcs_built_) return true;
  for (int ra = 0; ra < R; ++ra) {
    const util::ConstBitSpan da = domain(ra);
    for (int rb = ra + 1; rb < R; ++rb) {
      const util::ConstBitSpan db = domain(rb);
      const util::ConstBitMatrixView m = arena_.arc(ra, rb);
      for (std::size_t i = 0; i < D; ++i) {
        // Arc bits may only exist at alive×alive positions; in
        // particular an eliminated value's row/column must be zero.
        if (!da.test(i)) {
          if (m.row_any(i)) return false;
          continue;
        }
        bool bad = false;
        m.row_span(i).for_each([&](std::size_t j) {
          if (!db.test(j)) bad = true;
        });
        if (bad) return false;
      }
    }
  }
  if (arena_.counts_valid()) {
    // AC-4 counters must equal the live support counts.
    const auto counts = arena_.support_counts();
    for (int ra = 0; ra < R; ++ra) {
      for (int rb = ra + 1; rb < R; ++rb) {
        const util::ConstBitMatrixView m = arena_.arc(ra, rb);
        for (std::size_t i = 0; i < D; ++i) {
          if (!domain(ra).test(i)) continue;
          if (counts[(static_cast<std::size_t>(ra) * D + i) * R + rb] !=
              static_cast<std::int32_t>(m.row_count(i)))
            return false;
        }
        for (std::size_t j = 0; j < D; ++j) {
          if (!domain(rb).test(j)) continue;
          std::int32_t col = 0;
          for (std::size_t i = 0; i < D; ++i)
            if (m.test(i, j)) ++col;
          if (counts[(static_cast<std::size_t>(rb) * D + j) * R + ra] != col)
            return false;
        }
      }
    }
  }
  return true;
}

std::size_t Network::total_alive() const {
  std::size_t total = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) total += domain(role).count();
  return total;
}

std::size_t Network::arc_ones() const {
  std::size_t total = 0;
  const std::size_t A = arena_.num_arcs();
  for (std::size_t t = 0; t < A; ++t) total += arena_.arc(t).count();
  return total;
}

std::string to_string(const Grammar& g, RoleValue rv) {
  std::string out = g.label_name(rv.label);
  out += '-';
  out += rv.mod == kNil ? "nil" : std::to_string(rv.mod);
  return out;
}

}  // namespace parsec::cdg
