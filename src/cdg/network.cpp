#include "cdg/network.h"

#include <cassert>
#include <stdexcept>

namespace parsec::cdg {

Network::Network(const Grammar& g, const Sentence& s, Options opt)
    : grammar_(&g), sentence_(s), indexer_(s.size(), g.num_labels()) {
  if (s.size() <= 0) throw std::invalid_argument("empty sentence");
  const int R = num_roles();
  const int D = domain_size();
  domains_.assign(R, util::DynBitset(static_cast<std::size_t>(D)));
  init_domains();
  if (opt.prebuild_arcs) build_arcs();
}

void Network::init_domains() {
  const Grammar& g = *grammar_;
  const int R = num_roles();
  // Initial domains (paper §1.2, Fig. 1): every (label, modifiee) pair
  // such that the label is legal for the role (table T, refined by the
  // word's category) and the modifiee is not the word itself.
  for (int role = 0; role < R; ++role) {
    domains_[role].reset_all();
    const WordPos w = word_of_role(role);
    const RoleId rid = role_id_of(role);
    const CatId cat = sentence_.cat_at(w);
    for (LabelId l = 0; l < g.num_labels(); ++l) {
      if (!g.label_allowed(rid, cat, l)) continue;
      for (WordPos m = 0; m <= n(); ++m) {
        if (m == w) continue;  // no word ever modifies itself
        domains_[role].set(indexer_.encode(RoleValue{l, m}));
      }
    }
  }
}

bool Network::reinit(const Sentence& s) {
  if (s.size() != n()) return false;
  sentence_ = s;
  counters_ = NetworkCounters{};
  trace_ = nullptr;
  current_kind_ = TraceEvent::Kind::SupportElimination;
  current_cause_ = "consistency";
  init_domains();
  if (arcs_built_) fill_arcs();
  return true;
}

std::vector<RoleValue> Network::alive_values(int role) const {
  std::vector<RoleValue> out;
  domains_[role].for_each(
      [&](std::size_t rv) { out.push_back(indexer_.decode(static_cast<int>(rv))); });
  return out;
}

std::size_t Network::pair_index(int ra, int rb) const {
  assert(ra < rb);
  const std::size_t R = static_cast<std::size_t>(num_roles());
  const std::size_t a = static_cast<std::size_t>(ra);
  const std::size_t b = static_cast<std::size_t>(rb);
  // Row-major upper triangle (excluding the diagonal).
  return a * R - a * (a + 1) / 2 + (b - a - 1);
}

void Network::build_arcs() {
  if (arcs_built_) return;
  const int R = num_roles();
  const std::size_t D = static_cast<std::size_t>(domain_size());
  if (arcs_.empty())
    arcs_.assign(static_cast<std::size_t>(R) * (R - 1) / 2,
                 util::BitMatrix(D, D, false));
  fill_arcs();
  arcs_built_ = true;
}

void Network::fill_arcs() {
  const int R = num_roles();
  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      util::BitMatrix& m = arcs_[pair_index(ra, rb)];
      m.reset_all();
      domains_[ra].for_each([&](std::size_t i) {
        domains_[rb].for_each([&](std::size_t j) { m.set(i, j); });
      });
    }
  }
}

const util::BitMatrix& Network::arc_matrix(int ra, int rb) const {
  assert(arcs_built_);
  return arcs_[pair_index(ra, rb)];
}

util::BitMatrix& Network::arc(int ra, int rb) {
  return arcs_[pair_index(ra, rb)];
}

bool Network::arc_allows(int ra, int rv_a, int rb, int rv_b) const {
  assert(arcs_built_);
  if (ra < rb)
    return arcs_[pair_index(ra, rb)].test(static_cast<std::size_t>(rv_a),
                                          static_cast<std::size_t>(rv_b));
  return arcs_[pair_index(rb, ra)].test(static_cast<std::size_t>(rv_b),
                                        static_cast<std::size_t>(rv_a));
}

void Network::arc_forbid(int ra, int rv_a, int rb, int rv_b) {
  assert(arcs_built_);
  if (ra < rb)
    arc(ra, rb).reset(static_cast<std::size_t>(rv_a),
                      static_cast<std::size_t>(rv_b));
  else
    arc(rb, ra).reset(static_cast<std::size_t>(rv_b),
                      static_cast<std::size_t>(rv_a));
  ++counters_.arc_zeroings;
}

int Network::apply_unary(const CompiledConstraint& c) {
  assert(c.arity == 1);
  current_kind_ = TraceEvent::Kind::UnaryElimination;
  current_cause_ = c.name.empty() ? "unary constraint" : c.name;
  EvalContext ctx;
  ctx.sentence = &sentence_;
  int eliminated = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) {
    // Collect first: eliminating while iterating the bitset is fine for
    // bits we've already passed, but collecting keeps the sweep order
    // explicit and matches the parallel semantics (all checks see the
    // same pre-sweep state for a single constraint).
    std::vector<int> victims;
    domains_[role].for_each([&](std::size_t rv) {
      ctx.x = binding(role, static_cast<int>(rv));
      ++counters_.unary_evals;
      if (!eval_compiled(c, ctx)) victims.push_back(static_cast<int>(rv));
    });
    for (int rv : victims) {
      eliminate(role, rv);
      ++eliminated;
    }
  }
  return eliminated;
}

int Network::apply_binary(const CompiledConstraint& c) {
  assert(c.arity == 2);
  build_arcs();
  EvalContext ctx;
  ctx.sentence = &sentence_;
  int zeroed = 0;
  const int R = num_roles();

  // Pre-decode alive bindings per role once; the pair loop is the hot
  // path (O(n^4) evaluations per constraint, paper §1.4).
  std::vector<std::vector<int>> alive_idx(R);
  std::vector<std::vector<Binding>> bind(R);
  for (int role = 0; role < R; ++role) {
    domains_[role].for_each([&](std::size_t rv) {
      alive_idx[role].push_back(static_cast<int>(rv));
      bind[role].push_back(binding(role, static_cast<int>(rv)));
    });
  }

  for (int ra = 0; ra < R; ++ra) {
    for (int rb = ra + 1; rb < R; ++rb) {
      util::BitMatrix& m = arc(ra, rb);
      for (std::size_t ii = 0; ii < alive_idx[ra].size(); ++ii) {
        const int i = alive_idx[ra][ii];
        for (std::size_t jj = 0; jj < alive_idx[rb].size(); ++jj) {
          const int j = alive_idx[rb][jj];
          if (!m.test(static_cast<std::size_t>(i),
                      static_cast<std::size_t>(j)))
            continue;
          // Try both variable assignments (the constraint's x/y are
          // symmetric slots, not positional).
          ctx.x = bind[ra][ii];
          ctx.y = bind[rb][jj];
          counters_.binary_evals += 2;
          bool ok = eval_compiled(c, ctx);
          if (ok) {
            ctx.x = bind[rb][jj];
            ctx.y = bind[ra][ii];
            ok = eval_compiled(c, ctx);
          }
          if (!ok) {
            m.reset(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
            ++counters_.arc_zeroings;
            ++zeroed;
          }
        }
      }
    }
  }
  return zeroed;
}

void Network::eliminate(int role, int rv) {
  if (!domains_[role].test(static_cast<std::size_t>(rv))) return;
  domains_[role].reset(static_cast<std::size_t>(rv));
  ++counters_.eliminations;
  if (trace_)
    trace_(TraceEvent{current_kind_, current_cause_, role,
                      indexer_.decode(rv)});
  if (!arcs_built_) return;
  const int R = num_roles();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    if (role < other)
      arc(role, other).zero_row(static_cast<std::size_t>(rv));
    else
      arc(other, role).zero_col(static_cast<std::size_t>(rv));
  }
}

bool Network::supported(int role, int rv) {
  assert(arcs_built_);
  ++counters_.support_checks;
  const int R = num_roles();
  for (int other = 0; other < R; ++other) {
    if (other == role) continue;
    const bool ok =
        role < other
            ? arc(role, other).row_any(static_cast<std::size_t>(rv))
            : arc(other, role).col_any(static_cast<std::size_t>(rv));
    if (!ok) return false;
  }
  return true;
}

int Network::consistency_step() {
  build_arcs();
  current_kind_ = TraceEvent::Kind::SupportElimination;
  current_cause_ = "consistency";
  int eliminated = 0;
  const int R = num_roles();
  for (int role = 0; role < R; ++role) {
    std::vector<int> victims;
    domains_[role].for_each([&](std::size_t rv) {
      if (!supported(role, static_cast<int>(rv)))
        victims.push_back(static_cast<int>(rv));
    });
    for (int rv : victims) {
      eliminate(role, rv);
      ++eliminated;
    }
  }
  return eliminated;
}

int Network::filter(int max_iters) {
  int sweeps = 0;
  while (max_iters < 0 || sweeps < max_iters) {
    if (consistency_step() == 0) break;
    ++sweeps;
  }
  return sweeps;
}

bool Network::all_roles_nonempty() const {
  for (const auto& d : domains_)
    if (d.none()) return false;
  return true;
}

std::size_t Network::total_alive() const {
  std::size_t total = 0;
  for (const auto& d : domains_) total += d.count();
  return total;
}

std::size_t Network::arc_ones() const {
  std::size_t total = 0;
  for (const auto& m : arcs_) total += m.count();
  return total;
}

std::string to_string(const Grammar& g, RoleValue rv) {
  std::string out = g.label_name(rv.label);
  out += '-';
  out += rv.mod == kNil ? "nil" : std::to_string(rv.mod);
  return out;
}

}  // namespace parsec::cdg
