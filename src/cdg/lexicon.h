// Lexicon: surface word -> lexical categories, plus sentence tagging.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdg/types.h"

namespace parsec::cdg {

class Grammar;

/// A tagged sentence: the input to CN construction.  Positions are
/// 1-based throughout (position 0 is the `nil` modifiee).
struct Sentence {
  std::vector<std::string> words;  // words[i] is word at position i+1
  std::vector<CatId> cats;         // chosen category per word

  int size() const { return static_cast<int>(words.size()); }
  const std::string& word_at(WordPos p) const { return words.at(p - 1); }
  CatId cat_at(WordPos p) const { return cats.at(p - 1); }
};

/// Word -> category set.  The paper's nodes store "the possible parts of
/// speech" per word; its access function (cat w) is single-valued, so a
/// Sentence fixes one category per word.  `tag` picks each word's first
/// listed category; `taggings` enumerates every combination for
/// experiments with lexically ambiguous words.
class Lexicon {
 public:
  /// Registers `word` with categories `cats` (first = preferred tag).
  void add(std::string_view word, std::vector<CatId> cats);

  /// Convenience: category names resolved against `g` (interning them).
  void add(Grammar& g, std::string_view word,
           std::initializer_list<std::string_view> cat_names);

  bool contains(std::string_view word) const;

  /// All categories for `word`; throws std::out_of_range if unknown.
  std::span<const CatId> categories(std::string_view word) const;

  /// Tags each word with its preferred (first) category.
  Sentence tag(const std::vector<std::string>& words) const;

  /// Every category assignment (cartesian product), preferred-first.
  /// Bounded by `limit` to stay safe on pathological input.
  std::vector<Sentence> taggings(const std::vector<std::string>& words,
                                 std::size_t limit = 64) const;

  std::size_t size() const { return entries_.size(); }

  /// All words, sorted (for deterministic serialization/inspection).
  std::vector<std::string> words() const;

 private:
  std::unordered_map<std::string, std::vector<CatId>> entries_;
};

}  // namespace parsec::cdg
