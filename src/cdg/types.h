// Core scalar types of the CDG formalism (paper §1.1).
#pragma once

namespace parsec::cdg {

/// Dense id of a label (element of L, e.g. SUBJ, ROOT, DET, NP, S, BLANK).
using LabelId = int;
/// Dense id of a role (element of R, e.g. governor, needs).
using RoleId = int;
/// Dense id of a lexical category / terminal (element of Sigma,
/// e.g. det, noun, verb).
using CatId = int;

/// 1-based word position within a sentence.  Position 0 is reserved for
/// the special modifiee `nil` ("this role value modifies no word").
using WordPos = int;
inline constexpr WordPos kNil = 0;

}  // namespace parsec::cdg
