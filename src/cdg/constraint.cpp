#include "cdg/constraint.h"

#include "cdg/grammar.h"

namespace parsec::cdg {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::Bool: return "bool";
    case ValueType::Label: return "label";
    case ValueType::RoleT: return "role";
    case ValueType::Cat: return "category";
    case ValueType::Pos: return "position";
    case ValueType::Word: return "word";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::If: return "if";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Not: return "not";
    case Op::Eq: return "eq";
    case Op::Gt: return "gt";
    case Op::Lt: return "lt";
    case Op::Lab: return "lab";
    case Op::Mod: return "mod";
    case Op::RoleOf: return "role";
    case Op::PosOf: return "pos";
    case Op::WordAt: return "word";
    case Op::CatOf: return "cat";
    case Op::Var: return "var";
    case Op::ConstSym: return "sym";
    case Op::ConstInt: return "int";
  }
  return "?";
}

std::string Expr::to_string_with(const Grammar& g) const {
  switch (op) {
    case Op::Var:
      return value == 0 ? "x" : "y";
    case Op::ConstInt:
      return value == kNil ? "nil" : std::to_string(value);
    case Op::ConstSym:
      switch (type) {
        case ValueType::Label: return g.label_name(value);
        case ValueType::RoleT: return g.role_name(value);
        case ValueType::Cat: return g.category_name(value);
        default: return std::to_string(value);
      }
    default: {
      std::string out = "(";
      out += to_string(op);
      for (const Expr& a : args) {
        out += ' ';
        out += a.to_string_with(g);
      }
      out += ')';
      return out;
    }
  }
}

}  // namespace parsec::cdg
