// Constraint AST for the CDG constraint language (paper §1.3).
//
// Constraints are if-then rules over one (unary) or two (binary) role-value
// variables, written with the paper's access functions and predicates:
//
//   access:     (lab x) (mod x) (role x) (pos x) (word p) (cat w)
//   predicates: (and p q) (or p q) (not p) (eq a b) (gt a b) (lt a b)
//
// Every function is constant-time, so a constraint evaluates in O(1)
// (paper §1.3).  The AST is typed at parse time (see constraint_parser);
// evaluation lives in constraint_eval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdg/types.h"

namespace parsec::cdg {

/// Static type of an expression value.
enum class ValueType : std::uint8_t {
  Bool,      // predicate results
  Label,     // (lab x), label constants
  RoleT,     // (role x), role constants
  Cat,       // (cat w), category constants
  Pos,       // (pos x), (mod x), integer literals, nil (= position 0)
  Word,      // (word p): a word handle, identified by its position
};

const char* to_string(ValueType t);

/// AST node operator.
enum class Op : std::uint8_t {
  // top level
  If,        // args: {antecedent: Bool, consequent: Bool}
  // predicates (Bool)
  And, Or,   // n-ary (>= 2) for convenience; the paper writes them binary
  Not,
  Eq, Gt, Lt,
  // access functions
  Lab, Mod, RoleOf, PosOf,  // arg: Var
  WordAt,                   // arg: Pos expr -> Word
  CatOf,                    // arg: Word expr -> Cat
  // leaves
  Var,       // value = 0 for x, 1 for y
  ConstSym,  // value = symbol id; type says which family
  ConstInt,  // value = integer literal (positions)
};

const char* to_string(Op op);

/// One AST node.  Children are stored inline by value; constraint trees
/// are tiny (the paper bounds them by a constant).
struct Expr {
  Op op;
  ValueType type = ValueType::Bool;
  int value = 0;               // Var index / ConstSym id / ConstInt value
  std::vector<Expr> args;

  /// Renders back to the paper's surface syntax (for diagnostics).
  std::string to_string_with(const class Grammar& g) const;
};

/// A parsed constraint: `(if antecedent consequent)` plus metadata.
struct Constraint {
  std::string name;   // optional human-readable name ("verbs-are-roots")
  int arity = 1;      // 1 = unary (uses x only), 2 = binary (uses x and y)
  Expr root;          // op == Op::If

  const Expr& antecedent() const { return root.args[0]; }
  const Expr& consequent() const { return root.args[1]; }
};

}  // namespace parsec::cdg
