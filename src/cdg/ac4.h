// Support-counting filtering (AC-4 style).
//
// The paper's filtering re-sweeps every role value per iteration
// (O(n^4) per sweep, §1.4) and bounds the iteration count in practice.
// The classic alternative — Mohr & Henderson's AC-4, contemporary with
// Maruyama's work — maintains, for every (role value, incident arc),
// the count of supporting 1-bits; an elimination decrements its
// partners' counters and a counter hitting zero queues the next
// elimination.  Total work is O(n^4) *overall* instead of per sweep,
// at the cost of the counter memory.  The fixpoint is identical
// (support removal is confluent); tests verify bit-equality and
// bench_ablation_ac4 measures the trade.
//
// All working memory — the R·D·R counters, the queued flags, and the
// FIFO elimination queue — lives in the network's arena (cdg/arena.h),
// so repeated filtering over pooled networks allocates nothing.
#pragma once

#include "cdg/network.h"

namespace parsec::cdg {

struct Ac4Stats {
  std::size_t eliminations = 0;
  std::size_t counter_decrements = 0;
  std::size_t initial_count_work = 0;  // row words scanned to build counters
};

/// Runs support-counting filtering to the fixpoint.  Equivalent to
/// net.filter(-1).  Counters and queue storage come from the network's
/// arena; on return the arena's support counters are valid for the
/// fixpoint state (Network::check_invariants verifies them).
Ac4Stats filter_ac4(Network& net);

}  // namespace parsec::cdg
