// Support-counting filtering (AC-4 style).
//
// The paper's filtering re-sweeps every role value per iteration
// (O(n^4) per sweep, §1.4) and bounds the iteration count in practice.
// The classic alternative — Mohr & Henderson's AC-4, contemporary with
// Maruyama's work — maintains, for every (role value, incident arc),
// the count of supporting 1-bits; an elimination decrements its
// partners' counters and a counter hitting zero queues the next
// elimination.  Total work is O(n^4) *overall* instead of per sweep,
// at the cost of the counter memory.  The fixpoint is identical
// (support removal is confluent); tests verify bit-equality and
// bench_ablation_ac4 measures the trade.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "cdg/network.h"

namespace parsec::cdg {

struct Ac4Stats {
  std::size_t eliminations = 0;
  std::size_t counter_decrements = 0;
  std::size_t initial_count_work = 0;  // bits scanned to build counters
};

/// Reusable AC-4 working memory: the support counters dominate the
/// allocation cost (R·D·R ints), so long-lived callers (the parse
/// service's per-worker scratch) keep one of these and amortize the
/// allocation across same-shaped networks.
struct Ac4Scratch {
  std::vector<int> counts;
  std::vector<std::uint8_t> queued;
  std::deque<std::pair<int, int>> queue;
};

/// Runs support-counting filtering to the fixpoint.  Equivalent to
/// net.filter(-1).  `scratch` (if non-null) provides reusable counter
/// storage; it is resized and zeroed as needed.
Ac4Stats filter_ac4(Network& net, Ac4Scratch* scratch = nullptr);

}  // namespace parsec::cdg
