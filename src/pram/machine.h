// Step-counted CRCW P-RAM simulator (paper §2.1).
//
// The paper derives PARSEC's O(k) bound on a Common-CRCW P-RAM: any
// number of processors may read or write a cell in one step; if several
// write the same cell, one (arbitrary) succeeds — which suffices to OR
// or AND any number of bits in constant time [Gibbons & Rytter].
//
// Programs are sequences of *parallel steps*: for_all(m, fn) executes
// fn(0..m-1) conceptually in parallel and charges one time step, m
// processors.  The simulator tracks time steps, peak processor count and
// total work so the complexity claims (O(k) steps, O(n^4) processors)
// are measured rather than asserted.  Writes within a step go through
// write-buffer helpers that detect Common-rule violations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace parsec::pram {

/// Concurrent-write resolution discipline.
enum class WriteMode {
  Common,    // all writers of a cell must agree; violation throws
  Arbitrary, // a pseudo-random writer wins (seeded, deterministic)
};

struct StepStats {
  std::uint64_t time_steps = 0;
  std::uint64_t max_processors = 0;
  std::uint64_t total_work = 0;  // sum over steps of processors used
  std::uint64_t write_conflicts = 0;  // cells with >1 writer (any mode)
};

class Machine {
 public:
  explicit Machine(WriteMode mode = WriteMode::Common,
                   std::uint64_t seed = 1)
      : mode_(mode), rng_(seed) {}

  WriteMode mode() const { return mode_; }
  const StepStats& stats() const { return stats_; }
  void reset_stats() { stats_ = StepStats{}; }

  /// One parallel step with `m` processors.  `fn(i)` must only perform
  /// O(1) work per processor (this is a modelling contract, not
  /// enforced).  Reads see the pre-step state only if the caller uses
  /// the write-buffer helpers; direct writes are allowed when the
  /// algorithm is race-free by construction.
  template <typename Fn>
  void for_all(std::size_t m, Fn&& fn) {
    begin_step(m);
    for (std::size_t i = 0; i < m; ++i) fn(i);
  }

  /// CRCW global OR: true iff pred(i) for some i < m.  One step, m
  /// processors (every processor with pred true writes 1 to a common
  /// cell; Common-rule safe since all agree).
  template <typename Pred>
  bool global_or(std::size_t m, Pred&& pred) {
    begin_step(m);
    bool flag = false;
    for (std::size_t i = 0; i < m; ++i)
      if (pred(i)) flag = true;
    return flag;
  }

  /// CRCW global AND via De Morgan: one step, m processors.
  template <typename Pred>
  bool global_and(std::size_t m, Pred&& pred) {
    begin_step(m);
    bool flag = true;
    for (std::size_t i = 0; i < m; ++i)
      if (!pred(i)) flag = false;
    return flag;
  }

  /// One parallel step in which processors may write into `cells`
  /// concurrently: `writer(i)` returns an index to write `value(i)` to,
  /// or SIZE_MAX to stay silent.  Conflicts are resolved per `mode()`.
  template <typename T, typename WriterFn, typename ValueFn>
  void concurrent_write(std::span<T> cells, std::size_t m, WriterFn&& writer,
                        ValueFn&& value) {
    begin_step(m);
    // Track the first write per cell to detect conflicts.
    std::vector<std::uint8_t> written(cells.size(), 0);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t at = writer(i);
      if (at == static_cast<std::size_t>(-1)) continue;
      if (at >= cells.size())
        throw std::out_of_range("concurrent_write: bad cell index");
      const T v = value(i);
      if (!written[at]) {
        written[at] = 1;
        cells[at] = v;
        continue;
      }
      ++stats_.write_conflicts;
      switch (mode_) {
        case WriteMode::Common:
          if (!(cells[at] == v))
            throw std::logic_error(
                "Common CRCW violation: conflicting values written");
          break;
        case WriteMode::Arbitrary:
          // "A single random processor will succeed" (paper §2.1).
          if (rng_.next_bool()) cells[at] = v;
          break;
      }
    }
  }

  /// Accounts `extra` sequential (single-processor) steps, e.g. the
  /// ACU-side constant bookkeeping between parallel phases.
  void sequential_steps(std::uint64_t extra) {
    stats_.time_steps += extra;
    stats_.total_work += extra;
    if (stats_.max_processors == 0) stats_.max_processors = 1;
  }

 private:
  void begin_step(std::size_t m) {
    ++stats_.time_steps;
    stats_.total_work += m;
    if (m > stats_.max_processors) stats_.max_processors = m;
  }

  WriteMode mode_;
  util::Rng rng_;
  StepStats stats_;
};

}  // namespace parsec::pram
