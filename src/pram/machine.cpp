// The P-RAM machine is header-only (templates); this TU anchors the
// library target.
#include "pram/machine.h"
