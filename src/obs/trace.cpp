#include "obs/trace.h"

#include <atomic>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace parsec::obs {

namespace {

std::atomic<TraceSession*> g_active{nullptr};

// Generation stamp handed to each TraceSession at construction.  The
// per-thread buffer cache is keyed on it rather than on the session's
// address: addresses recycle (a stack session in a loop lands at the
// same spot every iteration), so a pointer-keyed cache could falsely
// hit and push events into a destroyed session's freed buffer.
// Generations never repeat, so a cached entry can only match the
// session that created it.
std::atomic<std::uint64_t> g_next_gen{1};

// Per-thread buffer cache: valid while `gen` matches the session's
// generation, so a thread resolves its buffer with one integer compare
// after the first span of a session.
struct ThreadCache {
  std::uint64_t gen = 0;  // 0 never matches a real session
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

TraceSession::TraceSession()
    : epoch_(std::chrono::steady_clock::now()),
      gen_(g_next_gen.fetch_add(1, std::memory_order_relaxed)) {
  TraceSession* expected = nullptr;
  const bool installed =
      g_active.compare_exchange_strong(expected, this, std::memory_order_acq_rel);
  assert(installed && "only one TraceSession may be active at a time");
  (void)installed;  // a second session is inert in release builds
}

TraceSession::~TraceSession() {
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

TraceSession* TraceSession::active() {
  return g_active.load(std::memory_order_acquire);
}

TraceSession::ThreadBuffer* TraceSession::buffer_for_this_thread() {
  if (t_cache.gen == gen_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  std::lock_guard lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buf = buffers_.back().get();
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  t_cache.gen = gen_;
  t_cache.buffer = buf;
  return buf;
}

std::size_t TraceSession::span_count() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  return total;
}

std::vector<SpanEvent> TraceSession::events() const {
  std::lock_guard lock(mu_);
  std::vector<SpanEvent> out;
  for (const auto& b : buffers_)
    out.insert(out.end(), b->events.begin(), b->events.end());
  return out;
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const auto& b : buffers_) {
    for (const SpanEvent& e : b->events) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"";
      write_escaped(os, e.name ? e.name : "?");
      os << "\",\"cat\":\"";
      write_escaped(os, e.cat ? e.cat : "parse");
      // Chrome's ts/dur are microseconds; keep nanosecond precision as
      // fractional microseconds.
      std::snprintf(num, sizeof num,
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"dur\":%.3f",
                    e.tid, static_cast<double>(e.start_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3);
      os << num;
      if (e.num_args > 0) {
        os << ",\"args\":{";
        for (std::uint8_t i = 0; i < e.num_args; ++i) {
          if (i) os << ",";
          os << "\"";
          write_escaped(os, e.args[i].key);
          os << "\":";
          if (e.args[i].kind == SpanArg::Kind::Int) {
            std::snprintf(num, sizeof num, "%" PRId64, e.args[i].i);
          } else {
            std::snprintf(num, sizeof num, "%.6g", e.args[i].f);
          }
          os << num;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace parsec::obs
