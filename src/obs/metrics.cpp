#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace parsec::obs {

std::size_t this_thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kStripes) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Shard& s : shards_)
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  Shard& s = shards_[this_thread_stripe()];
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s.buckets[i].fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < s.buckets.size(); ++i)
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t b : out.buckets) out.count += b;
  return out;
}

std::vector<double> default_latency_buckets_seconds() {
  return {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2,
          5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0};
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // never destroyed; see header
  return *reg;
}

Registry::Instrument& Registry::instrument(const std::string& name,
                                           const std::string& help, Type type,
                                           Labels labels) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.help = help;
    fam.type = type;
  } else if (fam.type != type) {
    throw std::logic_error("metric '" + name +
                           "' re-registered with a different type");
  }
  for (Instrument& ins : fam.instruments)
    if (ins.labels == labels) return ins;
  fam.instruments.emplace_back();
  Instrument& ins = fam.instruments.back();
  ins.labels = std::move(labels);
  return ins;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  std::lock_guard lock(mu_);
  Instrument& ins = instrument(name, help, Type::Counter, std::move(labels));
  if (!ins.counter) ins.counter = std::make_unique<Counter>();
  return *ins.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  std::lock_guard lock(mu_);
  Instrument& ins = instrument(name, help, Type::Gauge, std::move(labels));
  if (!ins.gauge) ins.gauge = std::make_unique<Gauge>();
  return *ins.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds, Labels labels) {
  std::lock_guard lock(mu_);
  Instrument& ins = instrument(name, help, Type::Histogram, std::move(labels));
  if (!ins.histogram)
    ins.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *ins.histogram;
}

void Registry::gauge_fn(const std::string& name, const std::string& help,
                        std::function<double()> fn, Labels labels) {
  std::lock_guard lock(mu_);
  Instrument& ins = instrument(name, help, Type::GaugeFn, std::move(labels));
  ins.fn = std::move(fn);
}

namespace {

void write_label_value(std::ostream& os, const std::string& v) {
  for (char c : v) {
    if (c == '\\' || c == '"')
      os << '\\' << c;
    else if (c == '\n')
      os << "\\n";
    else
      os << c;
  }
}

/// Renders {a="x",b="y"} (with `extra` appended) or nothing when empty.
void write_labels(std::ostream& os, const Labels& labels,
                  const std::string& extra_key = {},
                  const std::string& extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"";
    write_label_value(os, v);
    os << '"';
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_val << '"';
  }
  os << '}';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  // Snapshot every instrument under the mutex, then render — and
  // invoke gauge_fn callbacks — after releasing it, so a callback may
  // touch this registry (register a metric, read another value)
  // without deadlocking on the non-recursive mu_.
  struct CellSnap {
    Labels labels;
    std::uint64_t count = 0;              // Counter
    double value = 0.0;                   // Gauge
    std::function<double()> fn;           // GaugeFn (invoked post-unlock)
    Histogram::Snapshot hist;             // Histogram
  };
  struct FamSnap {
    std::string name;
    std::string help;
    Type type;
    std::vector<CellSnap> cells;
  };
  std::vector<FamSnap> snap;
  {
    std::lock_guard lock(mu_);
    snap.reserve(families_.size());
    for (const auto& [name, fam] : families_) {
      FamSnap& f = snap.emplace_back();
      f.name = name;
      f.help = fam.help;
      f.type = fam.type;
      f.cells.reserve(fam.instruments.size());
      for (const Instrument& ins : fam.instruments) {
        CellSnap& c = f.cells.emplace_back();
        c.labels = ins.labels;
        switch (fam.type) {
          case Type::Counter:
            c.count = ins.counter->value();
            break;
          case Type::Gauge:
            c.value = ins.gauge->value();
            break;
          case Type::GaugeFn:
            c.fn = ins.fn;
            break;
          case Type::Histogram:
            c.hist = ins.histogram->snapshot();
            break;
        }
      }
    }
  }
  for (const FamSnap& fam : snap) {
    os << "# HELP " << fam.name << ' ' << fam.help << '\n';
    os << "# TYPE " << fam.name << ' ';
    switch (fam.type) {
      case Type::Counter:
        os << "counter";
        break;
      case Type::Histogram:
        os << "histogram";
        break;
      case Type::Gauge:
      case Type::GaugeFn:
        os << "gauge";
        break;
    }
    os << '\n';
    for (const CellSnap& c : fam.cells) {
      switch (fam.type) {
        case Type::Counter:
          os << fam.name;
          write_labels(os, c.labels);
          os << ' ' << c.count << '\n';
          break;
        case Type::Gauge:
          os << fam.name;
          write_labels(os, c.labels);
          os << ' ' << fmt_double(c.value) << '\n';
          break;
        case Type::GaugeFn:
          os << fam.name;
          write_labels(os, c.labels);
          os << ' ' << fmt_double(c.fn ? c.fn() : 0.0) << '\n';
          break;
        case Type::Histogram: {
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < c.hist.bounds.size(); ++i) {
            cum += c.hist.buckets[i];
            os << fam.name << "_bucket";
            write_labels(os, c.labels, "le", fmt_double(c.hist.bounds[i]));
            os << ' ' << cum << '\n';
          }
          os << fam.name << "_bucket";
          write_labels(os, c.labels, "le", "+Inf");
          os << ' ' << c.hist.count << '\n';
          os << fam.name << "_sum";
          write_labels(os, c.labels);
          os << ' ' << fmt_double(c.hist.sum) << '\n';
          os << fam.name << "_count";
          write_labels(os, c.labels);
          os << ' ' << c.hist.count << '\n';
          break;
        }
      }
    }
  }
}

std::string Registry::scrape() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace parsec::obs
