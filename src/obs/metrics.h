// Process-wide metrics registry with Prometheus text exposition.
//
// Counters, gauges and fixed-bucket histograms for the quantities the
// paper's complexity argument is made of — effective constraint evals,
// ACU broadcasts, router scans, mask hit rates — plus ordinary serving
// metrics (request counts, latency).  ParseService updates the
// registry per request; `Registry::scrape()` renders the Prometheus
// text format, and the benches write it via `--metrics-out`.
//
// Hot-path design: metric handles (`Counter&`, `Histogram&`) are
// resolved ONCE, at registration time, under the registry mutex;
// updating a handle is lock-free.  Each counter/histogram cell is
// striped across kStripes cache-line-padded atomic shards indexed by a
// per-thread id, so concurrent workers increment disjoint cache lines
// (the per-thread-shard scheme, folded to a fixed stripe count);
// `value()`/`scrape()` merge the shards with relaxed loads.
//
// Thread-safety / lifetime contracts:
//   * Registration (`counter()`, `gauge()`, `histogram()`) is
//     mutex-serialized and idempotent: the same (name, labels) pair
//     returns the same handle, so concurrent registration is safe.
//     A name re-registered as a different metric type throws
//     std::logic_error.
//   * Handles returned by the registry are valid for the registry's
//     lifetime (metrics are never deregistered) and safe to update
//     from any thread with no external synchronization.
//   * `scrape()` may run concurrently with updates; it sees each shard
//     atomically (relaxed), so a scrape racing an `inc` may miss that
//     increment but never reads a torn value.  Histogram bucket counts
//     and `_sum` are each individually atomic but not mutually: a
//     concurrent scrape can observe a bucket/sum skew of the in-flight
//     observations (standard for sharded Prometheus clients).
//   * `Registry::global()` is a process-wide singleton, constructed on
//     first use and never destroyed before exit.  Tests that need
//     isolation construct their own Registry and inject it.
//
// Metric names follow Prometheus conventions (snake_case, `_total`
// suffix on counters, base-unit names like `_seconds`); the full name
// and label reference lives in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace parsec::obs {

/// Stripe count for sharded counters/histograms.  16 covers the
/// thread-pool sizes the serve layer runs (stripe collisions are
/// correctness-neutral; they only cost a shared cache line).
inline constexpr std::size_t kStripes = 16;

/// The calling thread's stripe index (assigned round-robin on first
/// use, stable for the thread's lifetime).
std::size_t this_thread_stripe();

/// Monotonically increasing counter.
class Counter {
 public:
  /// Lock-free; relaxed striped add.
  void inc(std::uint64_t v = 1) {
    cells_[this_thread_stripe()].v.fetch_add(v, std::memory_order_relaxed);
  }
  /// Merged value across stripes.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Last-write-wins floating-point gauge (also usable as a double
/// accumulator via add(), e.g. simulated seconds).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram.  Bucket i counts observations with
/// value <= bounds[i] (Prometheus `le` semantics); one implicit +Inf
/// bucket catches the rest.  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Lock-free striped observe.
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> buckets;  // per-bucket counts, +Inf last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;  // kStripes entries, sized at construction
};

/// Default latency buckets (seconds): 100 µs .. 5 s, roughly 1-2-5.
std::vector<double> default_latency_buckets_seconds();

/// Labels as (key, value) pairs in render order.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (what ParseService uses by default).
  static Registry& global();

  /// Get-or-create.  Same (name, labels) returns the same handle; a
  /// type conflict throws std::logic_error.  `help` sticks from the
  /// first registration of `name`.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Gauge computed at scrape time (queue depth, pool utilization).
  /// Re-registering the same (name, labels) replaces the callback.
  /// Callbacks run OUTSIDE the registry mutex (scrape copies them
  /// first), so a callback may safely register metrics or scrape this
  /// registry; it must tolerate being invoked concurrently from
  /// multiple scrapers and may outlive-copy: a racing re-registration
  /// can leave one scrape still running the old callback.
  void gauge_fn(const std::string& name, const std::string& help,
                std::function<double()> fn, Labels labels = {});

  /// Prometheus text exposition format (version 0.0.4).
  void write_prometheus(std::ostream& os) const;
  std::string scrape() const;

 private:
  enum class Type { Counter, Gauge, Histogram, GaugeFn };
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
  };
  struct Family {
    std::string help;
    Type type;
    std::vector<Instrument> instruments;  // registration order
  };

  Instrument& instrument(const std::string& name, const std::string& help,
                         Type type, Labels labels);

  mutable std::mutex mu_;  // registration + scrape
  std::map<std::string, Family> families_;
};

}  // namespace parsec::obs
