// Scoped phase tracer (Chrome trace_event JSON).
//
// The paper's whole argument is a step-count claim — O(k + log n) ACU
// broadcasts and router scans — so the repo needs to SEE where a parse
// spends its phases, not just total them per bench run.  This tracer
// records one span per pipeline phase (unary propagation, mask build,
// binary sweeps, filtering, AC-4 fixpoint, extraction, one envelope
// span per run_backend call) with the relevant cost counters attached
// as span args, and serializes them in the Chrome `trace_event` format
// so a parse can be opened directly in chrome://tracing or Perfetto.
//
// Granularity contract: spans are PHASE-grained — a bounded number per
// parse (tens, never per role value or per arc element).  That is the
// overhead guarantee; tests/obs/trace_test.cpp asserts the bound.
//
// Build modes:
//   * PARSEC_TRACING=ON (default): `Span` costs one relaxed atomic
//     load when no TraceSession is active, and two steady_clock reads
//     plus one vector append into a per-thread buffer when one is.
//   * PARSEC_TRACING=OFF (-DPARSEC_TRACING=OFF at configure time):
//     `Span` is an empty type with inline no-op members — call sites
//     compile unchanged and the optimizer erases them, so OFF builds
//     carry zero tracer code in hot paths.  TraceSession itself stays
//     compiled (tools keep linking); it just never records anything.
//
// Thread-safety / lifetime contracts:
//   * At most ONE TraceSession may be active at a time (enforced with
//     an assert; the second construction is inert in release builds).
//   * Span recording is thread-safe: each thread appends to its own
//     buffer, registered with the session under a mutex on first use.
//   * Every Span recorded against a session must be destroyed before
//     the session is (join or drain worker threads first).  The
//     session's writer (`write_chrome_trace`) may only run once
//     recording threads have quiesced; it is NOT safe to scrape a
//     session concurrently with active spans.
//   * Span `name`/`cat`/arg keys must be string literals (or otherwise
//     outlive the session) — the tracer stores pointers, not copies.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace parsec::obs {

#if defined(PARSEC_TRACING_ENABLED) && PARSEC_TRACING_ENABLED
inline constexpr bool kTracingCompiled = true;
#else
inline constexpr bool kTracingCompiled = false;
#endif

/// One key/value attachment on a span (rendered into the trace event's
/// "args" object).  Keys must outlive the session (string literals).
struct SpanArg {
  const char* key = nullptr;
  enum class Kind : std::uint8_t { Int, Float } kind = Kind::Int;
  union {
    std::int64_t i;
    double f;
  };
};

/// A completed span, as stored in a thread buffer.
struct SpanEvent {
  static constexpr std::size_t kMaxArgs = 12;
  const char* name = nullptr;  // literal; becomes the event "name"
  const char* cat = nullptr;   // literal; becomes the event "cat"
  std::int64_t start_ns = 0;   // relative to the session epoch
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint8_t num_args = 0;
  SpanArg args[kMaxArgs];
};

/// Collector for one tracing run.  Construct before the work you want
/// traced, destroy (or call write_chrome_trace) after it.  See the
/// header comment for the lifetime rules.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The currently active session (nullptr when none).
  static TraceSession* active();

  /// Serializes every recorded span as Chrome trace_event JSON
  /// ({"traceEvents":[...complete events...]}).  Call only after all
  /// recording threads have finished their spans.
  void write_chrome_trace(std::ostream& os) const;

  /// Total spans recorded so far (all threads).  Same quiescence rule
  /// as write_chrome_trace.
  std::size_t span_count() const;

  /// All events, merged (test hook; same quiescence rule).
  std::vector<SpanEvent> events() const;

 private:
  friend class Span;

  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<SpanEvent> events;
  };

  /// Registers (or retrieves) the calling thread's buffer.
  ThreadBuffer* buffer_for_this_thread();
  std::int64_t since_epoch_ns(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
        .count();
  }

  std::chrono::steady_clock::time_point epoch_;
  // Unique, never-reused stamp keying the per-thread buffer caches, so
  // a later session constructed at a recycled address cannot inherit a
  // cache entry pointing into this session's freed buffers.
  std::uint64_t gen_;
  mutable std::mutex mu_;  // guards buffers_ (registration + readout)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

#if defined(PARSEC_TRACING_ENABLED) && PARSEC_TRACING_ENABLED

/// RAII phase span.  Records [construction, destruction) against the
/// active TraceSession; a no-op (one relaxed atomic load) when no
/// session is active.  Args attached after the phase completes ride in
/// the event's "args" object; at most SpanEvent::kMaxArgs stick.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "parse")
      : session_(TraceSession::active()) {
    if (!session_) return;
    event_.name = name;
    event_.cat = cat;
    start_ = std::chrono::steady_clock::now();
  }

  ~Span() {
    if (!session_) return;
    const auto end = std::chrono::steady_clock::now();
    event_.start_ns = session_->since_epoch_ns(start_);
    event_.dur_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
    TraceSession::ThreadBuffer* buf = session_->buffer_for_this_thread();
    event_.tid = buf->tid;
    buf->events.push_back(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording (lets callers skip
  /// arg computation entirely when tracing is inactive).
  bool active() const { return session_ != nullptr; }

  void arg(const char* key, std::int64_t v) {
    if (!session_ || event_.num_args >= SpanEvent::kMaxArgs) return;
    SpanArg& a = event_.args[event_.num_args++];
    a.key = key;
    a.kind = SpanArg::Kind::Int;
    a.i = v;
  }
  void arg(const char* key, std::uint64_t v) {
    arg(key, static_cast<std::int64_t>(v));
  }
  void arg(const char* key, int v) { arg(key, static_cast<std::int64_t>(v)); }
  void arg(const char* key, double v) {
    if (!session_ || event_.num_args >= SpanEvent::kMaxArgs) return;
    SpanArg& a = event_.args[event_.num_args++];
    a.key = key;
    a.kind = SpanArg::Kind::Float;
    a.f = v;
  }

 private:
  TraceSession* session_;
  std::chrono::steady_clock::time_point start_{};
  SpanEvent event_{};
};

#else  // tracing compiled out: Span is an empty no-op type

class Span {
 public:
  explicit Span(const char*, const char* = "parse") {}
  bool active() const { return false; }
  void arg(const char*, std::int64_t) {}
  void arg(const char*, std::uint64_t) {}
  void arg(const char*, int) {}
  void arg(const char*, double) {}
};

#endif

}  // namespace parsec::obs
