// MasPar MP-1 SIMD array simulator (paper §2.2).
//
// The MP-1 is a massively parallel SIMD machine: an Array Control Unit
// (ACU) broadcasts one instruction at a time to up to 16,384 processing
// elements, each with local memory.  PEs can be switched off by an
// enable mask (MPL's plural `if`), and a global router provides
// scanAnd()/scanOr() segmented-scan primitives in logarithmic time
// [MasPar System Overview, 1990].
//
// This simulator executes *virtual* PE programs: kernels address V
// virtual PEs; the cost model folds them onto P physical PEs with the
// paper's virtualization scheme (design decision 6: each physical PE
// emulates a constant number of virtual PEs).  Counters record
//   * plural_ops  — ACU instruction broadcasts (weighted by the per-PE
//                   unit cost the kernel declares),
//   * scan_ops    — segmented scan invocations (router),
//   * route_ops   — general router gathers,
//   * acu_ops     — scalar ACU-side operations,
// from which CostModel computes simulated wall-clock (DESIGN.md §4).
// These counters are also the MasPar backend's observability surface:
// run_backend attaches them to its `backend.maspar` trace span and
// StatsPublisher exports them as `parsec_maspar_*_total` metrics (see
// docs/OBSERVABILITY.md for the cost-counter glossary).
#pragma once

#include <cstdint>
#include <vector>

namespace parsec::maspar {

struct MachineStats {
  std::uint64_t plural_ops = 0;
  std::uint64_t scan_ops = 0;
  std::uint64_t route_ops = 0;
  std::uint64_t xnet_ops = 0;  // nearest-neighbour shifts (X-Net)
  std::uint64_t acu_ops = 0;
  /// Physical PEs disabled at construction (`maspar.dead_pe` fault
  /// site); surviving PEs absorb their virtual load via virt_factor.
  std::uint64_t dead_pes = 0;
  /// Detected-and-retried router transmissions (`maspar.router` fault
  /// site); each retry re-charges the scan or gather it repeats.
  std::uint64_t router_retries = 0;

  MachineStats& operator+=(const MachineStats& o) {
    plural_ops += o.plural_ops;
    scan_ops += o.scan_ops;
    route_ops += o.route_ops;
    xnet_ops += o.xnet_ops;
    acu_ops += o.acu_ops;
    dead_pes += o.dead_pes;
    router_retries += o.router_retries;
    return *this;
  }
};

/// The MP-1 shipped in configurations of 1K-16K PEs; 16K is the machine
/// the paper used.
inline constexpr int kMp1MaxPes = 16384;

class Machine {
 public:
  /// `virtual_pes` is the problem-sized PE array the kernel addresses;
  /// `physical_pes` the hardware it is folded onto.
  explicit Machine(int virtual_pes, int physical_pes = kMp1MaxPes);

  int size() const { return vpes_; }
  int physical() const { return ppes_; }
  /// Physical PEs that survived construction.  The `maspar.dead_pe`
  /// fault site disables PEs the way MP-1 hardware fault tolerance did
  /// [MasPar System Overview, 1990]: the array keeps running, the dead
  /// PEs' virtual load folds onto the survivors (higher virt_factor,
  /// identical results).  Construction throws resil::InjectedFault if
  /// no PE survives.
  int alive_physical() const { return alive_ppes_; }
  /// ceil(V / alive P): how many virtual PEs each surviving physical PE
  /// emulates.  Equals ceil(V/P) when no PEs are dead.
  int virt_factor() const;

  // ---- enable mask (MPL plural-if semantics) --------------------------
  /// Pushes `mask` ANDed with the current enable state.  Pair with
  /// pop_enable(), or use EnableScope.
  void push_enable(const std::vector<std::uint8_t>& mask);
  void pop_enable();
  bool is_enabled(int pe) const { return enable_[pe] != 0; }
  const std::vector<std::uint8_t>& enable() const { return enable_; }

  class EnableScope {
   public:
    EnableScope(Machine& m, const std::vector<std::uint8_t>& mask)
        : m_(m) {
      m_.push_enable(mask);
    }
    ~EnableScope() { m_.pop_enable(); }
    EnableScope(const EnableScope&) = delete;
    EnableScope& operator=(const EnableScope&) = delete;

   private:
    Machine& m_;
  };

  // ---- SIMD execution ---------------------------------------------------
  /// Broadcasts one plural operation: `fn(pe)` runs on every enabled PE.
  /// `unit_cost` is the number of ACU instructions the operation costs
  /// per PE (a kernel touching an l x l submatrix declares l*l).
  template <typename Fn>
  void simd(int unit_cost, Fn&& fn) {
    stats_.plural_ops += static_cast<std::uint64_t>(unit_cost);
    for (int pe = 0; pe < vpes_; ++pe)
      if (enable_[pe]) fn(pe);
  }

  /// Scalar work on the ACU (loop control, broadcast of a constant).
  void acu(std::uint64_t ops = 1) { stats_.acu_ops += ops; }

  // ---- global router ------------------------------------------------------
  // Segments are runs of equal ids in `seg`; ids must be contiguous
  // (equal ids adjacent), mirroring the MP-1 requirement that scan
  // segments be runs of consecutive PEs.  Disabled PEs neither
  // contribute nor receive; they are transparent to the scan.

  /// Every enabled PE receives the OR over the enabled PEs of its
  /// segment.  Cost: one scanOr (log-time on the router).
  std::vector<std::uint8_t> seg_or(const std::vector<std::uint8_t>& v,
                                   const std::vector<int>& seg);

  /// AND analogue of seg_or.
  std::vector<std::uint8_t> seg_and(const std::vector<std::uint8_t>& v,
                                    const std::vector<int>& seg);

  // ---- X-Net (nearest-neighbour mesh) -----------------------------------
  // MPL exposes the PE array both as a linear array and as a 2-D grid
  // (128 x 128 on the full MP-1); xnet moves data to a neighbour in one
  // of the 8 compass directions in a single step.  We model the grid as
  // the smallest square holding the virtual array, row-major.

  /// Grid side length.
  int grid_side() const;
  /// Row/column of a PE in the X-Net grid.
  int grid_row(int pe) const { return pe / grid_side(); }
  int grid_col(int pe) const { return pe % grid_side(); }

  /// Every enabled PE receives the value of its neighbour `dr` rows and
  /// `dc` columns away (each in {-1, 0, +1}; one xnet step).  PEs whose
  /// neighbour is off-grid (or beyond the virtual array) receive
  /// `fill`.
  template <typename T>
  std::vector<T> xnet_shift(const std::vector<T>& v, int dr, int dc,
                            T fill = T{}) {
    ++stats_.xnet_ops;
    const int side = grid_side();
    std::vector<T> out(v.size(), fill);
    for (int pe = 0; pe < vpes_; ++pe) {
      if (!enable_[pe]) continue;
      const int r = pe / side + dr;
      const int c = pe % side + dc;
      const int src = r * side + c;
      if (r < 0 || c < 0 || r >= side || c >= side || src >= vpes_) {
        out[pe] = fill;
      } else {
        out[pe] = v[src];
      }
    }
    return out;
  }

  /// General router gather: every enabled PE pulls `v[from[pe]]`.
  /// (Implemented on the MP-1 as a send from each source; one router
  /// operation.)
  template <typename T>
  std::vector<T> gather(const std::vector<T>& v,
                        const std::vector<int>& from) {
    charge_route();
    std::vector<T> out(v.size());
    for (int pe = 0; pe < vpes_; ++pe)
      if (enable_[pe]) out[pe] = v[from[pe]];
    return out;
  }

  const MachineStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = MachineStats{};
    stats_.dead_pes = static_cast<std::uint64_t>(ppes_ - alive_ppes_);
  }

 private:
  template <typename Op>
  std::vector<std::uint8_t> seg_scan(const std::vector<std::uint8_t>& v,
                                     const std::vector<int>& seg,
                                     std::uint8_t identity, Op op);

  // Charge one scan/gather, consulting the `maspar.router` fault site:
  // a fault is detected and the transmission retried, so the op is
  // charged again and router_retries incremented — results unchanged.
  // Out-of-line so the resil dependency stays out of this header.
  void charge_scan();
  void charge_route();

  int vpes_;
  int ppes_;
  int alive_ppes_;
  std::vector<std::uint8_t> enable_;
  std::vector<std::vector<std::uint8_t>> enable_stack_;
  MachineStats stats_;
};

}  // namespace parsec::maspar
