// MPL-style "plural" variables (paper §2.2: "The language in which our
// algorithm is implemented is MPL, an extension of C which supports the
// SIMD parallelism of the MasPar").
//
// A Plural<T> holds one T per virtual PE.  Every elementwise operation
// is one ACU instruction broadcast: it executes on the enabled PEs and
// charges the machine's plural_ops counter, exactly like the raw
// Machine::simd API the kernels use — this layer is the idiomatic
// surface for writing new kernels:
//
//   Plural<int> id = Plural<int>::iota(m);
//   Plural<int> twice = id + id;
//   where(m, twice > 5, [&] { twice = Plural<int>(m, 0); });
//
// Disabled lanes of an expression result hold T{}; MPL leaves them
// undefined, so portable kernels never read them (the tests pin the
// T{} behaviour to catch accidental reads).
#pragma once

#include <cstdint>
#include <vector>

#include "maspar/machine.h"

namespace parsec::maspar {

template <typename T>
class Plural {
 public:
  /// Broadcast-initialises every lane to `init` (one instruction).
  explicit Plural(Machine& m, T init = T{})
      : m_(&m), v_(static_cast<std::size_t>(m.size()), T{}) {
    m.simd(1, [&](int pe) { v_[pe] = init; });
  }

  /// Each enabled PE computes its own id (MPL's `iproc`).
  static Plural iota(Machine& m) {
    Plural p(m, T{});
    m.simd(1, [&](int pe) { p.v_[pe] = static_cast<T>(pe); });
    return p;
  }

  /// Wraps existing per-PE data without charging an instruction.
  static Plural wrap(Machine& m, std::vector<T> data) {
    Plural p(m, kNoInit{});
    p.v_ = std::move(data);
    return p;
  }

  Machine& machine() const { return *m_; }
  const std::vector<T>& data() const { return v_; }
  T lane(int pe) const { return v_[pe]; }

  /// Masked assignment: enabled lanes take `other`'s value, disabled
  /// lanes keep theirs (MPL plural assignment under a plural if).
  Plural& operator=(const Plural& other) {
    if (this == &other) return *this;
    m_->simd(1, [&](int pe) { v_[pe] = other.v_[pe]; });
    return *this;
  }

  Plural(const Plural&) = default;
  Plural(Plural&&) noexcept = default;
  /// Move-assignment must also respect the enable mask (a defaulted
  /// move would silently overwrite disabled lanes).
  Plural& operator=(Plural&& other) noexcept {
    return *this = static_cast<const Plural&>(other);
  }

  // ---- elementwise arithmetic (one broadcast each) ---------------------
  friend Plural operator+(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x + y); });
  }
  friend Plural operator-(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x - y); });
  }
  friend Plural operator*(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x * y); });
  }
  friend Plural operator&(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x & y); });
  }
  friend Plural operator|(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x | y); });
  }
  friend Plural operator^(const Plural& a, const Plural& b) {
    return zip(a, b, [](T x, T y) { return static_cast<T>(x ^ y); });
  }

  Plural operator+(T s) const {
    return map([s](T x) { return static_cast<T>(x + s); });
  }
  Plural operator-(T s) const {
    return map([s](T x) { return static_cast<T>(x - s); });
  }
  Plural operator*(T s) const {
    return map([s](T x) { return static_cast<T>(x * s); });
  }

  // ---- comparisons (plural bool results) --------------------------------
  friend Plural<std::uint8_t> operator==(const Plural& a, const Plural& b) {
    return zipb(a, b, [](T x, T y) { return x == y; });
  }
  friend Plural<std::uint8_t> operator!=(const Plural& a, const Plural& b) {
    return zipb(a, b, [](T x, T y) { return x != y; });
  }
  friend Plural<std::uint8_t> operator<(const Plural& a, const Plural& b) {
    return zipb(a, b, [](T x, T y) { return x < y; });
  }
  friend Plural<std::uint8_t> operator>(const Plural& a, const Plural& b) {
    return zipb(a, b, [](T x, T y) { return x > y; });
  }
  Plural<std::uint8_t> operator==(T s) const {
    return mapb([s](T x) { return x == s; });
  }
  Plural<std::uint8_t> operator>(T s) const {
    return mapb([s](T x) { return x > s; });
  }
  Plural<std::uint8_t> operator<(T s) const {
    return mapb([s](T x) { return x < s; });
  }

  /// Generic elementwise transform (one broadcast).
  template <typename Fn>
  Plural map(Fn fn) const {
    Plural out(*m_, kNoInit{});
    m_->simd(1, [&](int pe) { out.v_[pe] = fn(v_[pe]); });
    return out;
  }

  /// Router wrappers.
  Plural<std::uint8_t> seg_or(const std::vector<int>& seg) const
    requires std::is_same_v<T, std::uint8_t>
  {
    return Plural<std::uint8_t>::wrap(*m_, m_->seg_or(v_, seg));
  }
  Plural<std::uint8_t> seg_and(const std::vector<int>& seg) const
    requires std::is_same_v<T, std::uint8_t>
  {
    return Plural<std::uint8_t>::wrap(*m_, m_->seg_and(v_, seg));
  }
  Plural gather(const Plural<int>& from) const {
    return wrap(*m_, m_->gather(v_, from.data()));
  }
  Plural xnet(int dr, int dc, T fill = T{}) const {
    return wrap(*m_, m_->xnet_shift(v_, dr, dc, fill));
  }

 private:
  struct kNoInit {};
  Plural(Machine& m, kNoInit)
      : m_(&m), v_(static_cast<std::size_t>(m.size()), T{}) {}

  template <typename Fn>
  static Plural zip(const Plural& a, const Plural& b, Fn fn) {
    Plural out(*a.m_, kNoInit{});
    a.m_->simd(1, [&](int pe) { out.v_[pe] = fn(a.v_[pe], b.v_[pe]); });
    return out;
  }
  template <typename Fn>
  static Plural<std::uint8_t> zipb(const Plural& a, const Plural& b, Fn fn) {
    auto out = Plural<std::uint8_t>::wrap(
        *a.m_, std::vector<std::uint8_t>(a.v_.size(), 0));
    a.m_->simd(1, [&](int pe) {
      out.mutable_lane(pe) = fn(a.v_[pe], b.v_[pe]) ? 1 : 0;
    });
    return out;
  }
  template <typename Fn>
  Plural<std::uint8_t> mapb(Fn fn) const {
    auto out = Plural<std::uint8_t>::wrap(
        *m_, std::vector<std::uint8_t>(v_.size(), 0));
    m_->simd(1, [&](int pe) { out.mutable_lane(pe) = fn(v_[pe]) ? 1 : 0; });
    return out;
  }

 public:
  /// Lane access for sibling instantiations (not ACU-costed; host-side).
  T& mutable_lane(int pe) { return v_[pe]; }

 private:
  template <typename U>
  friend class Plural;

  Machine* m_;
  std::vector<T> v_;
};

/// MPL's plural `if`: runs `fn` with the enable mask narrowed to the
/// lanes where `cond` is nonzero.
template <typename Fn>
void where(Machine& m, const Plural<std::uint8_t>& cond, Fn fn) {
  Machine::EnableScope scope(m, cond.data());
  fn();
}

}  // namespace parsec::maspar
