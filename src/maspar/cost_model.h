// Simulated-time cost model for the MasPar machine (DESIGN.md §4).
//
// The simulator counts ACU instruction broadcasts, segmented scans and
// router operations; this model converts the counts to seconds:
//
//   seconds =  t_instr * (virt_factor * plural_ops + acu_ops)
//            + (scan_ops + route_ops) *
//                (virt_factor * t_instr + ceil(log2(P)) * t_route)
//
// virt_factor = ceil(V/P) is the paper's processor-virtualization
// multiplier (design decision 6): every broadcast is repeated once per
// emulated virtual PE, which is what produces the step-function growth
// of parse time in n (Results §3: 0.15 s for the example sentence,
// 0.45 s for a 10-word sentence, "a discrete step function which grows
// as n^4").
//
// Calibration: t_instr and t_route are fixed once so that the toy
// 3-word parse with the paper's grammar lands at ~0.15 s; nothing else
// is fitted (see bench_parse_time and EXPERIMENTS.md).
//
// Both constants are exported as gauges
// (`parsec_maspar_cost_t_instr_seconds`, `..._t_route_seconds`) so a
// metrics scrape is self-describing: simulated seconds can be
// recomputed from the raw op counters and these two values
// (docs/OBSERVABILITY.md works the formula through an example).
#pragma once

#include "maspar/machine.h"

namespace parsec::maspar {

struct CostModel {
  double t_instr;  // seconds per ACU instruction broadcast
  double t_route;  // seconds per router stage (one hop of a log-time scan)

  /// Simulated seconds for `stats` on a machine folding `virtual_pes`
  /// onto `physical_pes`.
  double seconds(const MachineStats& stats, int virtual_pes,
                 int physical_pes) const;

  /// Dead PEs (injected hardware faults) shrink the folding target, so
  /// a degraded array costs more simulated time for the same op counts
  /// — the MP-1's remap-around-faults behaviour made observable.
  double seconds(const Machine& m) const {
    return seconds(m.stats(), m.size(), m.alive_physical());
  }

  /// The calibrated MP-1 model used by every benchmark.
  static CostModel mp1();
};

}  // namespace parsec::maspar
