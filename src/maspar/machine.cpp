#include "maspar/machine.h"

#include <stdexcept>
#include <string>

#include "resil/fault_plan.h"

namespace parsec::maspar {

Machine::Machine(int virtual_pes, int physical_pes)
    : vpes_(virtual_pes), ppes_(physical_pes), alive_ppes_(physical_pes) {
  if (virtual_pes <= 0) throw std::invalid_argument("need at least one PE");
  if (physical_pes <= 0)
    throw std::invalid_argument("need at least one physical PE");
  // `maspar.dead_pe` fault site: each physical PE is queried once; a
  // fire marks it dead and its virtual load folds onto the survivors
  // (MP-1 hardware fault tolerance — disable and remap).  An array with
  // no survivors cannot run at all.
  if (resil::installed_plan() != nullptr) {
    int dead = 0;
    for (int pe = 0; pe < ppes_; ++pe)
      if (resil::should_fire("maspar.dead_pe")) ++dead;
    alive_ppes_ = ppes_ - dead;
    stats_.dead_pes = static_cast<std::uint64_t>(dead);
    if (alive_ppes_ <= 0)
      throw resil::InjectedFault("maspar: all " + std::to_string(ppes_) +
                                 " physical PEs dead");
  }
  enable_.assign(static_cast<std::size_t>(vpes_), 1);
}

int Machine::virt_factor() const {
  return (vpes_ + alive_ppes_ - 1) / alive_ppes_;
}

void Machine::charge_scan() {
  ++stats_.scan_ops;
  while (resil::should_fire("maspar.router")) {
    ++stats_.scan_ops;  // detected fault: the scan is repeated
    ++stats_.router_retries;
  }
}

void Machine::charge_route() {
  ++stats_.route_ops;
  while (resil::should_fire("maspar.router")) {
    ++stats_.route_ops;  // detected fault: the gather is repeated
    ++stats_.router_retries;
  }
}

int Machine::grid_side() const {
  int side = 1;
  while (side * side < vpes_) ++side;
  return side;
}

void Machine::push_enable(const std::vector<std::uint8_t>& mask) {
  if (static_cast<int>(mask.size()) != vpes_)
    throw std::invalid_argument("enable mask size mismatch");
  enable_stack_.push_back(enable_);
  for (int pe = 0; pe < vpes_; ++pe) enable_[pe] = enable_[pe] && mask[pe];
  ++stats_.plural_ops;  // the mask test is itself one broadcast
}

void Machine::pop_enable() {
  if (enable_stack_.empty()) throw std::logic_error("enable stack underflow");
  enable_ = std::move(enable_stack_.back());
  enable_stack_.pop_back();
}

template <typename Op>
std::vector<std::uint8_t> Machine::seg_scan(const std::vector<std::uint8_t>& v,
                                            const std::vector<int>& seg,
                                            std::uint8_t identity, Op op) {
  if (static_cast<int>(v.size()) != vpes_ ||
      static_cast<int>(seg.size()) != vpes_)
    throw std::invalid_argument("seg scan size mismatch");
  charge_scan();
  std::vector<std::uint8_t> out(v.size(), identity);
  int pe = 0;
  while (pe < vpes_) {
    int end = pe;
    while (end < vpes_ && seg[end] == seg[pe]) ++end;
    std::uint8_t acc = identity;
    for (int i = pe; i < end; ++i)
      if (enable_[i]) acc = op(acc, v[i]);
    for (int i = pe; i < end; ++i)
      if (enable_[i]) out[i] = acc;
    pe = end;
  }
  return out;
}

std::vector<std::uint8_t> Machine::seg_or(const std::vector<std::uint8_t>& v,
                                          const std::vector<int>& seg) {
  return seg_scan(v, seg, 0,
                  [](std::uint8_t a, std::uint8_t b) -> std::uint8_t {
                    return a || b;
                  });
}

std::vector<std::uint8_t> Machine::seg_and(const std::vector<std::uint8_t>& v,
                                           const std::vector<int>& seg) {
  return seg_scan(v, seg, 1,
                  [](std::uint8_t a, std::uint8_t b) -> std::uint8_t {
                    return a && b;
                  });
}

}  // namespace parsec::maspar
