#include "maspar/cost_model.h"

#include <cmath>

namespace parsec::maspar {

double CostModel::seconds(const MachineStats& stats, int virtual_pes,
                          int physical_pes) const {
  const int vf = (virtual_pes + physical_pes - 1) / physical_pes;
  const double log_p = std::ceil(
      std::log2(static_cast<double>(std::min(virtual_pes, physical_pes)) + 1));
  const double instr_time =
      t_instr * (static_cast<double>(vf) * static_cast<double>(stats.plural_ops) +
                 static_cast<double>(stats.acu_ops));
  const double router_time =
      static_cast<double>(stats.scan_ops + stats.route_ops) *
      (static_cast<double>(vf) * t_instr + log_p * t_route);
  return instr_time + router_time;
}

CostModel CostModel::mp1() {
  // Calibrated so the paper's 3-word example parse with the toy grammar
  // (10 constraints) costs ~0.15 s on a 16K-PE machine; see
  // bench_parse_time for the resulting step function.  The MP-1's
  // 4-bit PEs ran at 80ns/cycle with multi-cycle 32-bit macro-ops,
  // so tens of microseconds per broadcast instruction is the right
  // order of magnitude.
  return CostModel{/*t_instr=*/5.5e-5, /*t_route=*/1.8e-5};
}

}  // namespace parsec::maspar
