#include "maspar/layout.h"

namespace parsec::maspar {

Layout::Layout(const cdg::Grammar& g, const cdg::Sentence& s)
    : n_(s.size()), q_(g.num_roles()), l_(g.max_labels_per_role()) {
  mods_.resize(static_cast<std::size_t>(n_));
  for (cdg::WordPos w = 1; w <= n_; ++w) {
    auto& m = mods_[w - 1];
    m.push_back(cdg::kNil);
    for (cdg::WordPos p = 1; p <= n_; ++p)
      if (p != w) m.push_back(p);
  }
  role_labels_.resize(static_cast<std::size_t>(q_));
  for (cdg::RoleId r = 0; r < q_; ++r) role_labels_[r] = g.labels_for_role(r);
}

int Layout::mod_slot(cdg::WordPos w, cdg::WordPos m) const {
  const auto& slots = mods_[w - 1];
  for (std::size_t i = 0; i < slots.size(); ++i)
    if (slots[i] == m) return static_cast<int>(i);
  return -1;
}

int Layout::label_slot(cdg::RoleId r, cdg::LabelId lab) const {
  const auto& labs = role_labels_[r];
  for (std::size_t i = 0; i < labs.size(); ++i)
    if (labs[i] == lab) return static_cast<int>(i);
  return -1;
}

}  // namespace parsec::maspar
