// PE allocation for CDG arc elements on the MasPar (paper §2.2.2-2.2.3,
// Figs. 11 and 13).
//
// Virtual PE space: for every ordered pair of roles (a, b) and every
// pair of modifiee slots (mx for a's word, my for b's word), one PE:
//
//     vpe(a, mx, b, my) = ((a*M + mx) * R + b) * M + my
//
// where R = n*q is the number of roles and M = n the number of modifiee
// slots per word (nil plus the n-1 other positions; a word never
// modifies itself).  Each PE holds an l x l bit submatrix over the
// T-allowed labels of the two roles (Fig. 13; l is the paper's
// grammatical constant, 3 in the worked example).
//
// This ordering makes both scan phases of consistency maintenance run
// over contiguous segments (Figs. 10/12):
//   * segment (a, mx, b): the M PEs holding one arc's rows for the role
//     values (<label>, mods[a's word][mx]) — scanOr gives the arc OR;
//   * segment (a, mx):    the R*M PEs of one role/mod slot — scanAnd
//     over the arc ORs gives the role value's support bit.
// PEs with a == b represent an arc from a role to itself and are
// disabled from the beginning of parsing (Fig. 11's "PEs 0-2").
//
// Every logical arc element is held twice — once as a row in a's
// segment, once as a column in b's (the paper's Fig. 13 "column:PE120 /
// row:PE222" annotations).  The copies are kept in sync because every
// kernel applies symmetric updates; the column-side support bit reaches
// a PE through the global router from its *partner* PE
// vpe(b, my, a, mx).
//
// Total: R^2 * M^2 = q^2 * n^4 virtual PEs — the paper's O(n^4).  For
// the 3-word example: (6*3)^2 = 324 PEs, 108 per word, 54 per role,
// exactly Fig. 11.
#pragma once

#include <vector>

#include "cdg/grammar.h"
#include "cdg/lexicon.h"
#include "cdg/types.h"

namespace parsec::maspar {

class Layout {
 public:
  Layout(const cdg::Grammar& g, const cdg::Sentence& s);

  int n() const { return n_; }
  int q() const { return q_; }
  /// R = n*q roles, indexed like cdg::Network: (w-1)*q + role_id.
  int num_roles() const { return n_ * q_; }
  /// M = n modifiee slots per word (nil first, then the other positions
  /// ascending).
  int mods_per_word() const { return n_; }
  /// l = max T-allowed labels per role (Fig. 13's submatrix dimension).
  int labels_per_role() const { return l_; }
  /// Virtual PE count R^2 * M^2 = q^2 n^4.
  int vpes() const { return num_roles() * num_roles() * n_ * n_; }

  int vpe(int a, int mx, int b, int my) const {
    const int R = num_roles(), M = n_;
    return ((a * M + mx) * R + b) * M + my;
  }

  struct Coord {
    int a, mx, b, my;
  };
  Coord coord(int vpe) const {
    const int R = num_roles(), M = n_;
    Coord c;
    c.my = vpe % M;
    vpe /= M;
    c.b = vpe % R;
    vpe /= R;
    c.mx = vpe % M;
    c.a = vpe / M;
    return c;
  }

  /// PE holding the same logical arc elements transposed.
  int partner(int pe) const {
    const Coord c = coord(pe);
    return vpe(c.b, c.my, c.a, c.mx);
  }

  bool diagonal(int pe) const {
    const Coord c = coord(pe);
    return c.a == c.b;
  }

  // ---- segment ids (contiguous by construction) ------------------------
  int seg_arc(int pe) const { return pe / n_; }           // (a, mx, b)
  int seg_role_slot(int pe) const {                        // (a, mx)
    return pe / (num_roles() * n_);
  }

  // ---- role / word / label decoding ------------------------------------
  cdg::WordPos word_of_role(int role) const { return role / q_ + 1; }
  cdg::RoleId role_id_of(int role) const { return role % q_; }

  /// Modifiee slot list of word `w` (1-based): [nil, positions != w].
  const std::vector<cdg::WordPos>& mods_of_word(cdg::WordPos w) const {
    return mods_[w - 1];
  }
  /// Slot index of modifiee `m` for word `w`; -1 if m == w (invalid).
  int mod_slot(cdg::WordPos w, cdg::WordPos m) const;

  /// T-allowed labels of role-id `r`, in label-id order, padded view:
  /// entries beyond the role's label count are absent (vector sized per
  /// role).
  const std::vector<cdg::LabelId>& labels_of(cdg::RoleId r) const {
    return role_labels_[r];
  }
  /// Index of `lab` within labels_of(r), or -1.
  int label_slot(cdg::RoleId r, cdg::LabelId lab) const;

 private:
  int n_, q_, l_;
  std::vector<std::vector<cdg::WordPos>> mods_;        // per word
  std::vector<std::vector<cdg::LabelId>> role_labels_;  // per role id
};

}  // namespace parsec::maspar
