#include "topo/reduction.h"

#include <cmath>

namespace parsec::topo {

std::uint64_t tree_reduce_steps(std::size_t width) {
  std::uint64_t steps = 0;
  while (width > 1) {
    width = (width + 1) / 2;
    ++steps;
  }
  return steps;
}

std::size_t mesh_side(std::size_t pes) {
  std::size_t side = static_cast<std::size_t>(std::sqrt(static_cast<double>(pes)));
  while (side * side < pes) ++side;
  return side;
}

std::uint64_t mesh_reduce_steps(std::size_t pes) {
  const std::size_t side = mesh_side(pes);
  return side > 0 ? 2 * (side - 1) : 0;
}

std::uint64_t hypercube_reduce_steps(std::size_t pes) {
  return tree_reduce_steps(pes);  // ceil(log2 P) dimensions
}

namespace {
template <typename Op>
TreeReduction tree_reduce(std::span<const std::uint8_t> bits, Op op,
                          bool identity) {
  TreeReduction r;
  std::vector<std::uint8_t> level(bits.begin(), bits.end());
  if (level.empty()) {
    r.result = identity;
    return r;
  }
  while (level.size() > 1) {
    ++r.rounds;
    std::vector<std::uint8_t> next((level.size() + 1) / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const std::uint8_t a = level[2 * i];
      const std::uint8_t b =
          (2 * i + 1 < level.size()) ? level[2 * i + 1]
                                     : static_cast<std::uint8_t>(identity);
      next[i] = op(a, b);
    }
    level = std::move(next);
  }
  r.result = level[0] != 0;
  return r;
}
}  // namespace

TreeReduction tree_reduce_or(std::span<const std::uint8_t> bits) {
  return tree_reduce(
      bits, [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a || b; },
      false);
}

TreeReduction tree_reduce_and(std::span<const std::uint8_t> bits) {
  return tree_reduce(
      bits, [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a && b; },
      true);
}

}  // namespace parsec::topo
