// Reduction-network models for the Figure-8 architecture comparison.
//
// The paper's table contrasts CDG parsing across architectures whose
// only relevant difference is how fast they combine O(n^2)-wide ORs and
// ANDs and how many PEs they have:
//   * CRCW P-RAM:        O(1) reductions, O(n^4) PEs
//   * 2-D mesh / CA:     diameter-bound reductions, O(n^2) PEs
//   * tree / hypercube:  O(log P) reductions, O(n^4 / log n) PEs
//
// This module provides the closed-form step costs plus a tiny functional
// tree reducer whose measured round count is tested against the
// closed form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace parsec::topo {

/// ceil(log2(width)) combining rounds; 0 for width <= 1.
std::uint64_t tree_reduce_steps(std::size_t width);

/// Steps to reduce over a square mesh of `pes` processors: data flows
/// along rows then a column, 2*(side-1) hops.
std::uint64_t mesh_reduce_steps(std::size_t pes);

/// Hypercube all-reduce: one hop per dimension.
std::uint64_t hypercube_reduce_steps(std::size_t pes);

/// Side length of the smallest square mesh holding `pes` PEs.
std::size_t mesh_side(std::size_t pes);

/// Functional binary-tree OR reduction that counts the rounds it
/// actually performs (tests compare against tree_reduce_steps).
struct TreeReduction {
  bool result = false;
  std::uint64_t rounds = 0;
};
TreeReduction tree_reduce_or(std::span<const std::uint8_t> bits);

/// AND analogue.
TreeReduction tree_reduce_and(std::span<const std::uint8_t> bits);

}  // namespace parsec::topo
