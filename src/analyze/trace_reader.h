// Chrome trace-event JSON reader for the offline analyzer.
//
// Ingests the `{"traceEvents":[...]}` documents produced by
// obs::TraceSession::write_chrome_trace (and by any other tool that
// emits complete "X" events).  Only complete events are modelled —
// the tracer never writes B/E pairs, counters or metadata records —
// but unknown phases are skipped rather than rejected so externally
// produced traces load too.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace parsec::analyze {

/// One complete ("ph":"X") trace event.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;   // start, microseconds since session epoch
  double dur_us = 0.0;  // duration, microseconds
  std::map<std::string, double> args;  // numeric args only (the tracer
                                       // emits nothing else)

  double end_us() const { return ts_us + dur_us; }
};

struct Trace {
  std::vector<TraceEvent> events;  // file order
  /// Number of records skipped because they were not complete events.
  std::size_t skipped = 0;
};

/// Parses one trace document.  Throws std::invalid_argument (or
/// analyze::JsonError) on malformed input.
Trace read_trace(std::istream& in);
Trace read_trace_text(const std::string& text);

/// Loads a trace from a file; throws std::invalid_argument when the
/// file cannot be opened.
Trace read_trace_file(const std::string& path);

}  // namespace parsec::analyze
