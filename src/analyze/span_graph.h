// Span-graph reconstruction and critical-path analytics.
//
// The tracer (obs/trace.h) records phase spans flat, one buffer per
// thread; this module rebuilds the structure an engineer sees in
// Perfetto — per-thread span trees joined by interval containment —
// and turns it into numbers a CI gate can act on:
//
//   * request reconstruction: every `serve.request` span (and every
//     `backend.*` envelope that is not inside one) is one request;
//     the engine phase spans nested under it are its pipeline;
//   * critical-path decomposition: each request's wall time is
//     attributed to the deepest span active at each instant (each
//     parse runs single-threaded, so this decomposition is exact and
//     sums to the request duration);
//   * per-phase aggregation: count / total / self time and latency
//     quantiles per span name across the run;
//   * straggler detection: requests whose duration exceeds
//     `straggler_factor` x the median, and phases whose p99/median
//     skew exceeds `phase_skew_factor`.
//
// Everything here is offline and allocation-relaxed: it runs in
// parsec_analyze and in tests, never on a serving path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/trace_reader.h"

namespace parsec::analyze {

/// One node of the reconstructed span forest; index-aligned with
/// Trace::events (node i wraps event i).
struct SpanNode {
  int parent = -1;            // -1 = root of its thread's forest
  std::vector<int> children;  // time order
  double self_us = 0.0;       // duration not covered by children
  int depth = 0;              // 0 at thread roots
};

struct SpanForest {
  std::vector<SpanNode> nodes;  // index-aligned with trace.events
  std::vector<int> roots;       // thread roots, grouped by tid, time order
};

/// Rebuilds parent/child structure from interval containment within
/// each (pid, tid) lane.  Events are sorted by start time (duration
/// breaking ties, longer first) and nested with a stack; a small
/// epsilon absorbs the writer's microsecond rounding.
SpanForest build_span_forest(const Trace& trace);

/// One segment of a request's critical-path decomposition: `us`
/// microseconds attributed to span `name` (the deepest span active).
/// Consecutive segments with the same name are merged.
struct PathSegment {
  std::string name;
  double us = 0.0;
};

/// Critical-path decomposition of the subtree rooted at `node`.
/// Segment times sum to the root span's duration (up to rounding).
std::vector<PathSegment> critical_path(const Trace& trace,
                                       const SpanForest& forest, int node);

/// Per-phase aggregate across the run.
struct PhaseStat {
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;  // sum of span durations
  double self_us = 0.0;   // sum of self times (critical-path share)
  double p50_us = 0.0;    // median span duration
  double p99_us = 0.0;
  double max_us = 0.0;
  double skew = 0.0;  // p99 / median (0 when median is 0)
};

/// One reconstructed request.
struct RequestStat {
  std::string root_name;  // "serve.request" or the bare envelope name
  std::string backend;    // from the backend.* envelope ("?" if none)
  std::uint32_t tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  double queue_us = 0.0;  // serve.request `queue_us` arg (0 if absent)
  long n = -1;            // sentence length arg (-1 if absent)
  int accepted = -1;      // envelope `accepted` arg (-1 if absent)
  bool straggler = false;
  std::vector<PathSegment> path;  // critical-path decomposition
};

struct AnalyzeOptions {
  /// A request is a straggler when its duration exceeds this factor
  /// times the median request duration.
  double straggler_factor = 3.0;
  /// A phase is skewed when p99/median exceeds this factor (phases
  /// with fewer than `min_phase_count` spans are never flagged).
  double phase_skew_factor = 4.0;
  std::size_t min_phase_count = 8;
};

struct RunAnalysis {
  std::size_t events = 0;
  std::size_t threads = 0;
  double wall_us = 0.0;  // last span end - first span start
  std::vector<PhaseStat> phases;      // sorted by self time, descending
  std::vector<RequestStat> requests;  // time order
  double request_median_us = 0.0;
  double request_p99_us = 0.0;
  std::vector<std::size_t> stragglers;      // indices into `requests`
  std::vector<std::string> skewed_phases;   // names flagged by skew
  /// Run-level critical-path profile: the per-phase self-time totals
  /// restricted to request subtrees, sorted descending — where the
  /// wall time of the workload's requests actually went.
  std::vector<PathSegment> profile;
};

/// Full analysis of one trace.
RunAnalysis analyze_trace(const Trace& trace, const AnalyzeOptions& opt = {});

}  // namespace parsec::analyze
