// Prometheus text-format (0.0.4) reader for the offline analyzer.
//
// Parses the scrapes written by obs::Registry::write_prometheus (the
// `--metrics-out` files and ParseService::metrics_text()) into a flat
// sample table keyed by the canonical series id
// `name{key="value",...}` with labels in file order.  The reader
// understands exactly what the writer emits — HELP/TYPE comments,
// counter/gauge samples, histogram `_bucket`/`_sum`/`_count` series —
// and tolerates the standard-format details the writer never produces
// (escaped label values, +Inf/NaN sample values, blank lines).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace parsec::analyze {

/// One time series sample.
struct Sample {
  std::string name;  // family name incl. _bucket/_sum/_count suffix
  std::vector<std::pair<std::string, std::string>> labels;  // file order
  double value = 0.0;

  /// Canonical id: `name` or `name{k="v",...}` with labels in file
  /// order (the writer's registration order, which is stable).
  std::string id() const;
};

/// Metric family type, from the # TYPE comment.
enum class MetricType { Untyped, Counter, Gauge, Histogram, Summary };

/// One parsed scrape.
struct Scrape {
  std::vector<Sample> samples;               // file order
  std::map<std::string, MetricType> types;   // family name -> TYPE
  std::map<std::string, std::string> help;   // family name -> HELP

  /// Sample lookup by canonical id; nullptr when absent.
  const Sample* find(const std::string& id) const;
  /// Value lookup with a fallback.
  double value_or(const std::string& id, double fallback) const;
};

/// Parses one scrape.  Throws std::invalid_argument with a line number
/// on malformed input.
Scrape read_prometheus(std::istream& in);
Scrape read_prometheus_text(const std::string& text);

/// Loads a scrape from a file; throws std::invalid_argument when the
/// file cannot be opened.
Scrape read_prometheus_file(const std::string& path);

}  // namespace parsec::analyze
