#include "analyze/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace parsec::analyze {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) throw std::logic_error("json: not a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::logic_error("json: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) throw std::logic_error("json: not an array");
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::Object) throw std::logic_error("json: not an object");
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_string() : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.arr_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.obj_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      take();
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      take();
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The tracer only emits \u00XX control escapes; encode the
          // general case as UTF-8 anyway (no surrogate pairing — the
          // writer never produces them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::make_number(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void write_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_value(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out += "null";
      break;
    case JsonValue::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::Number: {
      const double d = v.as_number();
      char buf[40];
      if (std::nearbyint(d) == d && std::fabs(d) < 9.0e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", d);
      }
      out += buf;
      break;
    }
    case JsonValue::Kind::String:
      write_string(out, v.as_string());
      break;
    case JsonValue::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        write_value(out, item);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        write_string(out, key);
        out.push_back(':');
        write_value(out, item);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string to_json(const JsonValue& v) {
  std::string out;
  write_value(out, v);
  return out;
}

}  // namespace parsec::analyze
