// Human-readable rendering of a trace analysis and a counter diff.
//
// Two output styles per section: plain text for the terminal / CI log,
// and GitHub-flavoured markdown for the Actions job summary
// ($GITHUB_STEP_SUMMARY).  The report answers, in order: where did
// the wall time go (critical-path profile), which phases and requests
// misbehave (stragglers, p99/median skew), and which cost counters
// moved against the committed baseline (the perf gate verdict).
#pragma once

#include <iosfwd>
#include <string>

#include "analyze/baseline.h"
#include "analyze/span_graph.h"

namespace parsec::analyze {

/// Terminal rendering of one analyzed trace.
void write_run_text(std::ostream& os, const std::string& title,
                    const RunAnalysis& run);

/// Terminal rendering of one baseline diff.
void write_gate_text(std::ostream& os, const std::string& title,
                     const GateResult& gate);

/// Markdown rendering (job-summary tables) of the same two sections.
void write_run_markdown(std::ostream& os, const std::string& title,
                        const RunAnalysis& run);
void write_gate_markdown(std::ostream& os, const std::string& title,
                         const GateResult& gate);

/// "12.3 ms" / "456 us" style duration formatting (microsecond input).
std::string format_us(double us);

}  // namespace parsec::analyze
