#include "analyze/trace_reader.h"

#include <fstream>
#include <sstream>

#include "analyze/json.h"

namespace parsec::analyze {

Trace read_trace_text(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* events = doc.find("traceEvents");
  if (!events) {
    // The array form (a bare [...] of events) is also legal Chrome
    // trace JSON.
    if (doc.is_array())
      events = &doc;
    else
      throw std::invalid_argument("trace: no traceEvents array");
  }
  if (!events->is_array())
    throw std::invalid_argument("trace: traceEvents is not an array");

  Trace trace;
  trace.events.reserve(events->as_array().size());
  for (const JsonValue& ev : events->as_array()) {
    if (!ev.is_object()) {
      ++trace.skipped;
      continue;
    }
    if (ev.string_or("ph", "X") != "X") {
      ++trace.skipped;  // B/E pairs, counters, metadata: not modelled
      continue;
    }
    TraceEvent e;
    e.name = ev.string_or("name", "?");
    e.cat = ev.string_or("cat", "");
    e.pid = static_cast<std::uint32_t>(ev.number_or("pid", 0));
    e.tid = static_cast<std::uint32_t>(ev.number_or("tid", 0));
    e.ts_us = ev.number_or("ts", 0.0);
    e.dur_us = ev.number_or("dur", 0.0);
    if (const JsonValue* args = ev.find("args"); args && args->is_object()) {
      for (const auto& [key, val] : args->as_object())
        if (val.is_number()) e.args[key] = val.as_number();
    }
    trace.events.push_back(std::move(e));
  }
  return trace;
}

Trace read_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_trace_text(buf.str());
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace parsec::analyze
