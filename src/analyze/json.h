// Minimal recursive-descent JSON reader for the offline analyzer.
//
// The analyzer ingests two self-produced formats — Chrome trace-event
// JSON from obs::TraceSession and the perf-gate baseline files under
// bench/baselines/ — so this parser covers exactly RFC 8259 value
// syntax (objects, arrays, strings with escapes, numbers, booleans,
// null) with no extensions, no streaming, and no external dependency.
// It is an offline tool: clarity over speed, and every malformed input
// throws analyze::JsonError with a byte offset instead of returning a
// half-parsed value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace parsec::analyze {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value.  Object member order is not preserved (the
/// trace and baseline formats never depend on it).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_bool() const { return kind_ == Kind::Bool; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  // truncates; throws on non-number
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience: member `key` as number/string with a default when
  /// absent (still throws if present with the wrong kind).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(std::map<std::string, JsonValue> o);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).  Throws JsonError on malformed input.
JsonValue parse_json(const std::string& text);

/// Serializes a value back to compact JSON (stable member order: the
/// map's lexicographic key order).  Numbers that hold an integral value
/// render without a decimal point so counter baselines diff cleanly.
std::string to_json(const JsonValue& v);

}  // namespace parsec::analyze
