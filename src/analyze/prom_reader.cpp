#include "analyze/prom_reader.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace parsec::analyze {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("metrics line " + std::to_string(line_no) +
                              ": " + what);
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

void skip_spaces(const std::string& s, std::size_t& i) {
  while (i < s.size() && is_space(s[i])) ++i;
}

// Parses `name{k="v",...}` starting at i; leaves i after the series.
void parse_series(const std::string& s, std::size_t& i, std::size_t line_no,
                  Sample& out) {
  const std::size_t start = i;
  while (i < s.size() && !is_space(s[i]) && s[i] != '{') ++i;
  out.name = s.substr(start, i - start);
  if (out.name.empty()) fail(line_no, "missing metric name");
  if (i < s.size() && s[i] == '{') {
    ++i;
    while (i < s.size() && s[i] != '}') {
      const std::size_t kstart = i;
      while (i < s.size() && s[i] != '=') ++i;
      if (i >= s.size()) fail(line_no, "unterminated label");
      std::string key = s.substr(kstart, i - kstart);
      ++i;  // '='
      if (i >= s.size() || s[i] != '"') fail(line_no, "label value not quoted");
      ++i;  // '"'
      std::string val;
      while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size()) {
          ++i;
          if (s[i] == 'n')
            val.push_back('\n');
          else
            val.push_back(s[i]);  // \" and \\ (and the identity escape)
        } else {
          val.push_back(s[i]);
        }
        ++i;
      }
      if (i >= s.size()) fail(line_no, "unterminated label value");
      ++i;  // closing '"'
      out.labels.emplace_back(std::move(key), std::move(val));
      if (i < s.size() && s[i] == ',') ++i;
    }
    if (i >= s.size() || s[i] != '}') fail(line_no, "unterminated label set");
    ++i;  // '}'
  }
}

double parse_value(const std::string& tok, std::size_t line_no) {
  if (tok == "+Inf" || tok == "Inf")
    return std::numeric_limits<double>::infinity();
  if (tok == "-Inf") return -std::numeric_limits<double>::infinity();
  if (tok == "NaN") return std::numeric_limits<double>::quiet_NaN();
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    fail(line_no, "malformed sample value '" + tok + "'");
  return v;
}

}  // namespace

std::string Sample::id() const {
  if (labels.empty()) return name;
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

const Sample* Scrape::find(const std::string& id) const {
  for (const Sample& s : samples)
    if (s.id() == id) return &s;
  return nullptr;
}

double Scrape::value_or(const std::string& id, double fallback) const {
  const Sample* s = find(id);
  return s ? s->value : fallback;
}

Scrape read_prometheus(std::istream& in) {
  Scrape scrape;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    skip_spaces(line, i);
    if (i >= line.size()) continue;  // blank
    if (line[i] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments skipped.
      std::istringstream is(line.substr(i + 1));
      std::string kind, name;
      is >> kind >> name;
      if (kind == "TYPE") {
        std::string type;
        is >> type;
        MetricType t = MetricType::Untyped;
        if (type == "counter")
          t = MetricType::Counter;
        else if (type == "gauge")
          t = MetricType::Gauge;
        else if (type == "histogram")
          t = MetricType::Histogram;
        else if (type == "summary")
          t = MetricType::Summary;
        scrape.types[name] = t;
      } else if (kind == "HELP") {
        std::string rest;
        std::getline(is, rest);
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        scrape.help[name] = rest;
      }
      continue;
    }
    Sample sample;
    parse_series(line, i, line_no, sample);
    skip_spaces(line, i);
    const std::size_t vstart = i;
    while (i < line.size() && !is_space(line[i])) ++i;
    if (vstart == i) fail(line_no, "missing sample value");
    sample.value = parse_value(line.substr(vstart, i - vstart), line_no);
    // An optional trailing timestamp is allowed by the format; the
    // writer never emits one and the analyzer ignores it.
    scrape.samples.push_back(std::move(sample));
  }
  return scrape;
}

Scrape read_prometheus_text(const std::string& text) {
  std::istringstream is(text);
  return read_prometheus(is);
}

Scrape read_prometheus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open metrics file: " + path);
  return read_prometheus(in);
}

}  // namespace parsec::analyze
