// parsec_analyze — offline trace analytics + CI perf-regression gate.
//
// Ingests one or more Chrome-trace / Prometheus-scrape pairs produced
// by the benches (`--trace-out` / `--metrics-out`), reconstructs the
// per-request span graph, prints critical-path decompositions,
// per-phase aggregates and straggler flags, and diffs the scrape's
// cost counters against a committed baseline (bench/baselines/*.json)
// with per-counter tolerance bands.
//
//   parsec_analyze [--trace FILE]... [--metrics FILE]...
//                  [--baseline FILE]... [--update-baseline]
//                  [--workload DESC] [--captured DATE] [--report-md FILE]
//                  [--straggler-factor F] [--phase-skew-factor F]
//
// Multiple --metrics files pair positionally with multiple --baseline
// files (the CI perf-gate job diffs the throughput scrape and the
// parse-time scrape against their own baselines in one invocation).
// --update-baseline rewrites each baseline from its scrape instead of
// diffing, carrying hand-tuned tolerance/gate flags forward.
//
// Exit status: 0 = analyzed, all gated counters within bands;
//              1 = at least one gated counter regressed (or a gated
//                  series disappeared from the scrape);
//              2 = usage or input error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/baseline.h"
#include "analyze/prom_reader.h"
#include "analyze/report.h"
#include "analyze/span_graph.h"
#include "analyze/trace_reader.h"

namespace {

using namespace parsec;

struct Config {
  std::vector<std::string> traces;
  std::vector<std::string> metrics;
  std::vector<std::string> baselines;
  bool update_baseline = false;
  std::string workload;   // recorded into updated baselines
  std::string captured;   // capture date recorded into updated baselines
  std::string report_md;  // markdown report path (append)
  analyze::AnalyzeOptions opt;
};

int usage() {
  std::cerr
      << "usage: parsec_analyze [--trace FILE]... [--metrics FILE]...\n"
         "                      [--baseline FILE]... [--update-baseline]\n"
         "                      [--workload DESC] [--captured DATE]\n"
         "                      [--report-md FILE] [--straggler-factor F] "
         "[--phase-skew-factor F]\n"
         "\n"
         "Analyzes obs trace.json / metrics.prom outputs: critical paths,\n"
         "per-phase aggregates, stragglers, and cost-counter diffs against\n"
         "committed baselines (see docs/OBSERVABILITY.md).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--trace")
        cfg.traces.push_back(next());
      else if (arg == "--metrics")
        cfg.metrics.push_back(next());
      else if (arg == "--baseline")
        cfg.baselines.push_back(next());
      else if (arg == "--update-baseline")
        cfg.update_baseline = true;
      else if (arg == "--workload")
        cfg.workload = next();
      else if (arg == "--captured")
        cfg.captured = next();
      else if (arg == "--report-md")
        cfg.report_md = next();
      else if (arg == "--straggler-factor")
        cfg.opt.straggler_factor = std::stod(next());
      else if (arg == "--phase-skew-factor")
        cfg.opt.phase_skew_factor = std::stod(next());
      else
        return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "parsec_analyze: " << e.what() << "\n";
    return usage();
  }

  if (cfg.traces.empty() && cfg.metrics.empty()) return usage();
  if (!cfg.baselines.empty() && cfg.baselines.size() != cfg.metrics.size()) {
    std::cerr << "parsec_analyze: " << cfg.baselines.size()
              << " baseline(s) for " << cfg.metrics.size()
              << " metrics file(s); they pair positionally\n";
    return 2;
  }
  if (cfg.update_baseline && cfg.baselines.empty()) {
    std::cerr << "parsec_analyze: --update-baseline needs --baseline\n";
    return 2;
  }

  std::ostringstream md;
  bool regression = false;

  try {
    for (const std::string& path : cfg.traces) {
      const analyze::Trace trace = analyze::read_trace_file(path);
      const analyze::RunAnalysis run = analyze::analyze_trace(trace, cfg.opt);
      analyze::write_run_text(std::cout, "trace " + path, run);
      std::cout << "\n";
      analyze::write_run_markdown(md, "Trace `" + path + "`", run);
    }

    for (std::size_t i = 0; i < cfg.metrics.size(); ++i) {
      const analyze::Scrape scrape =
          analyze::read_prometheus_file(cfg.metrics[i]);
      if (cfg.baselines.empty()) {
        std::cout << "scrape " << cfg.metrics[i] << ": "
                  << scrape.samples.size() << " samples (no baseline)\n\n";
        continue;
      }
      const std::string& bpath = cfg.baselines[i];
      if (cfg.update_baseline) {
        const analyze::Baseline* carry = nullptr;
        analyze::Baseline old;
        try {
          old = analyze::load_baseline(bpath);
          carry = &old;
        } catch (const std::exception&) {
          // No previous baseline: start from the default bands.
        }
        analyze::Baseline fresh = analyze::make_baseline(
            scrape, cfg.workload.empty() ? cfg.metrics[i] : cfg.workload,
            cfg.captured, carry);
        if (carry && cfg.workload.empty()) fresh.workload = old.workload;
        if (carry && cfg.captured.empty()) fresh.captured = old.captured;
        analyze::save_baseline(bpath, fresh);
        std::cout << "baseline " << bpath << ": pinned "
                  << fresh.entries.size() << " counter(s) from "
                  << cfg.metrics[i] << "\n";
        continue;
      }
      const analyze::Baseline baseline = analyze::load_baseline(bpath);
      const analyze::GateResult gate =
          analyze::diff_scrape(baseline, scrape);
      analyze::write_gate_text(
          std::cout, "perf gate " + cfg.metrics[i] + " vs " + bpath, gate);
      std::cout << "\n";
      analyze::write_gate_markdown(
          md, "Perf gate `" + cfg.metrics[i] + "` vs `" + bpath + "`", gate);
      regression = regression || gate.regression();
    }
  } catch (const std::exception& e) {
    std::cerr << "parsec_analyze: " << e.what() << "\n";
    return 2;
  }

  if (!cfg.report_md.empty()) {
    std::ofstream out(cfg.report_md, std::ios::app);
    if (!out) {
      std::cerr << "parsec_analyze: cannot write " << cfg.report_md << "\n";
      return 2;
    }
    out << md.str();
  }

  return regression ? 1 : 0;
}
