#include "analyze/baseline.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "analyze/json.h"

namespace parsec::analyze {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Classifies one scrape sample for make_baseline.
enum class Class { Skip, GateCounter, AdvisoryTime };

Class classify(const Sample& s, const std::map<std::string, MetricType>& types) {
  // Histogram series: bucket boundaries move with wall time, but the
  // _count of a deterministic workload is exact and the _sum is a
  // useful advisory wall-time aggregate.
  if (ends_with(s.name, "_bucket")) return Class::Skip;
  if (ends_with(s.name, "_sum")) return Class::AdvisoryTime;
  if (ends_with(s.name, "_count")) return Class::GateCounter;

  auto it = types.find(s.name);
  const MetricType type =
      it == types.end() ? MetricType::Untyped : it->second;
  if (type == MetricType::Counter) return Class::GateCounter;
  if (type == MetricType::Gauge || type == MetricType::Untyped) {
    // Sampled gauges (queue depth) and calibration constants carry no
    // regression signal; the simulated-seconds gauge is the cost
    // model's deterministic output and is worth gating.
    if (s.name == "parsec_maspar_simulated_seconds") return Class::GateCounter;
    return Class::Skip;
  }
  return Class::Skip;
}

}  // namespace

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open baseline file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  if (!doc.is_object())
    throw std::invalid_argument("baseline: document is not an object");
  Baseline b;
  b.workload = doc.string_or("workload", "");
  b.captured = doc.string_or("captured", "");
  const JsonValue* counters = doc.find("counters");
  if (!counters || !counters->is_array())
    throw std::invalid_argument("baseline: missing counters array");
  for (const JsonValue& c : counters->as_array()) {
    BaselineEntry e;
    e.id = c.string_or("id", "");
    if (e.id.empty())
      throw std::invalid_argument("baseline: counter entry without id");
    e.value = c.number_or("value", 0.0);
    e.tolerance = c.number_or("tolerance", kCounterTolerance);
    const JsonValue* gate = c.find("gate");
    e.gate = gate ? gate->as_bool() : true;
    b.entries.push_back(std::move(e));
  }
  return b;
}

void save_baseline(const std::string& path, const Baseline& b) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot write baseline file: " + path);
  // Hand-rendered (not to_json) to keep one entry per line — these
  // files are committed and reviewed, so diffs should be line-grained.
  auto escape = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  };
  out << "{\n";
  out << "  \"workload\": \"" << escape(b.workload) << "\",\n";
  out << "  \"captured\": \"" << escape(b.captured) << "\",\n";
  out << "  \"counters\": [\n";
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const BaselineEntry& e = b.entries[i];
    out << "    {\"id\": \"" << escape(e.id) << "\", \"value\": "
        << to_json(JsonValue::make_number(e.value))
        << ", \"tolerance\": " << to_json(JsonValue::make_number(e.tolerance))
        << ", \"gate\": " << (e.gate ? "true" : "false") << "}"
        << (i + 1 < b.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

Baseline make_baseline(const Scrape& scrape, const std::string& workload,
                       const std::string& captured, const Baseline* carry) {
  Baseline b;
  b.workload = workload;
  b.captured = captured;
  for (const Sample& s : scrape.samples) {
    const Class cls = classify(s, scrape.types);
    if (cls == Class::Skip) continue;
    BaselineEntry e;
    e.id = s.id();
    e.value = s.value;
    e.tolerance =
        cls == Class::GateCounter ? kCounterTolerance : kTimeTolerance;
    e.gate = cls == Class::GateCounter;
    if (carry) {
      const auto it = std::find_if(
          carry->entries.begin(), carry->entries.end(),
          [&](const BaselineEntry& old) { return old.id == e.id; });
      if (it != carry->entries.end()) {
        e.tolerance = it->tolerance;
        e.gate = it->gate;
      }
    }
    b.entries.push_back(std::move(e));
  }
  return b;
}

GateResult diff_scrape(const Baseline& baseline, const Scrape& scrape) {
  GateResult result;
  for (const BaselineEntry& e : baseline.entries) {
    CounterDiff d;
    d.id = e.id;
    d.baseline = e.value;
    d.tolerance = e.tolerance;
    d.gate = e.gate;
    const Sample* s = scrape.find(e.id);
    if (!s) {
      d.missing = true;
      d.within = false;
      d.actual = 0.0;
      d.rel_delta = 0.0;
    } else {
      d.actual = s->value;
      const double denom = std::max(std::fabs(e.value), 1.0);
      d.rel_delta = (d.actual - e.value) / denom;
      d.within = std::fabs(d.actual - e.value) <= e.tolerance * denom;
    }
    if (e.gate) {
      ++result.gated;
      if (!d.within) ++result.failed;
    } else if (!d.within) {
      ++result.advisories;
    }
    result.diffs.push_back(std::move(d));
  }
  return result;
}

}  // namespace parsec::analyze
