#include "analyze/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/table.h"

namespace parsec::analyze {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

std::string percent(double frac) { return fmt("%.1f%%", frac * 100.0); }

std::string path_to_string(const std::vector<PathSegment>& path,
                           double total_us, std::size_t max_segments = 8) {
  std::string out;
  std::size_t shown = 0;
  for (const PathSegment& seg : path) {
    if (shown == max_segments) {
      out += " -> ...";
      break;
    }
    if (!out.empty()) out += " -> ";
    out += seg.name;
    if (total_us > 0.0)
      out += " (" + percent(seg.us / total_us) + ")";
    ++shown;
  }
  return out;
}

/// The slowest request (straggler exemplar) or -1.
long slowest_request(const RunAnalysis& run) {
  long best = -1;
  double best_dur = -1.0;
  for (std::size_t i = 0; i < run.requests.size(); ++i) {
    if (run.requests[i].dur_us > best_dur) {
      best_dur = run.requests[i].dur_us;
      best = static_cast<long>(i);
    }
  }
  return best;
}

}  // namespace

std::string format_us(double us) {
  if (us >= 1e6) return fmt("%.2f s", us / 1e6);
  if (us >= 1e3) return fmt("%.2f ms", us / 1e3);
  return fmt("%.1f us", us);
}

void write_run_text(std::ostream& os, const std::string& title,
                    const RunAnalysis& run) {
  os << "== " << title << " ==\n";
  os << run.events << " spans, " << run.threads << " thread(s), wall "
     << format_us(run.wall_us) << ", " << run.requests.size()
     << " request(s)\n";
  if (!run.requests.empty()) {
    os << "request duration: median " << format_us(run.request_median_us)
       << ", p99 " << format_us(run.request_p99_us) << "\n";
  }

  if (!run.profile.empty()) {
    double total = 0.0;
    for (const PathSegment& seg : run.profile) total += seg.us;
    os << "\ncritical-path profile (request wall time by deepest span):\n";
    util::Table t({"span", "self", "share"});
    for (const PathSegment& seg : run.profile)
      t.add_row({seg.name, format_us(seg.us),
                 total > 0.0 ? percent(seg.us / total) : "-"});
    t.print(os);
  }

  if (!run.phases.empty()) {
    os << "\nper-phase aggregate:\n";
    util::Table t({"phase", "count", "total", "self", "p50", "p99", "skew"});
    for (const PhaseStat& p : run.phases)
      t.add_row({p.name, std::to_string(p.count), format_us(p.total_us),
                 format_us(p.self_us), format_us(p.p50_us),
                 format_us(p.p99_us), fmt("%.1fx", p.skew)});
    t.print(os);
  }

  const long slowest = slowest_request(run);
  if (slowest >= 0) {
    const RequestStat& r =
        run.requests[static_cast<std::size_t>(slowest)];
    os << "\nslowest request: " << r.root_name << " backend=" << r.backend;
    if (r.n >= 0) os << " n=" << r.n;
    os << " dur=" << format_us(r.dur_us);
    if (r.queue_us > 0.0) os << " queue=" << format_us(r.queue_us);
    os << "\n  critical path: " << path_to_string(r.path, r.dur_us) << "\n";
  }

  if (!run.stragglers.empty()) {
    os << "\nstragglers (> straggler_factor x median):\n";
    for (const std::size_t i : run.stragglers) {
      const RequestStat& r = run.requests[i];
      os << "  #" << i << " " << r.root_name << " backend=" << r.backend
         << " dur=" << format_us(r.dur_us) << " ("
         << fmt("%.1fx", run.request_median_us > 0.0
                             ? r.dur_us / run.request_median_us
                             : 0.0)
         << " median)\n";
    }
  }
  if (!run.skewed_phases.empty()) {
    os << "\nskewed phases (p99/median above threshold):";
    for (const std::string& name : run.skewed_phases) os << " " << name;
    os << "\n";
  }
}

void write_gate_text(std::ostream& os, const std::string& title,
                     const GateResult& gate) {
  os << "== " << title << " ==\n";
  util::Table t({"counter", "baseline", "actual", "delta", "band", "verdict"});
  for (const CounterDiff& d : gate.diffs) {
    std::string verdict;
    if (d.missing)
      verdict = d.gate ? "MISSING" : "missing";
    else if (d.within)
      verdict = "ok";
    else
      verdict = d.gate ? "FAIL" : "drift";
    t.add_row({d.id, fmt("%.6g", d.baseline), fmt("%.6g", d.actual),
               fmt("%+.2f%%", d.rel_delta * 100.0),
               fmt("±%.0f%%", d.tolerance * 100.0),
               verdict + (d.gate ? "" : " (advisory)")});
  }
  t.print(os);
  os << gate.gated << " gated counter(s), " << gate.failed
     << " regression(s), " << gate.advisories << " advisory drift(s)\n";
  os << "verdict: " << (gate.regression() ? "REGRESSION" : "within bands")
     << "\n";
}

void write_run_markdown(std::ostream& os, const std::string& title,
                        const RunAnalysis& run) {
  os << "### " << title << "\n\n";
  os << run.events << " spans · " << run.threads << " thread(s) · wall "
     << format_us(run.wall_us) << " · " << run.requests.size()
     << " request(s)";
  if (!run.requests.empty())
    os << " · request median " << format_us(run.request_median_us)
       << " / p99 " << format_us(run.request_p99_us);
  os << "\n\n";

  if (!run.profile.empty()) {
    double total = 0.0;
    for (const PathSegment& seg : run.profile) total += seg.us;
    os << "**Critical-path profile** (request wall time by deepest "
          "span):\n\n";
    os << "| span | self | share |\n|---|---|---|\n";
    for (const PathSegment& seg : run.profile)
      os << "| `" << seg.name << "` | " << format_us(seg.us) << " | "
         << (total > 0.0 ? percent(seg.us / total) : "-") << " |\n";
    os << "\n";
  }

  const long slowest = slowest_request(run);
  if (slowest >= 0) {
    const RequestStat& r = run.requests[static_cast<std::size_t>(slowest)];
    os << "**Slowest request:** `" << r.root_name << "` backend=`"
       << r.backend << "`";
    if (r.n >= 0) os << " n=" << r.n;
    os << " dur=" << format_us(r.dur_us) << "  \n";
    os << "critical path: " << path_to_string(r.path, r.dur_us) << "\n\n";
  }

  if (!run.stragglers.empty()) {
    os << "**Stragglers:** " << run.stragglers.size()
       << " request(s) above the straggler threshold";
    for (const std::size_t i : run.stragglers) {
      const RequestStat& r = run.requests[i];
      os << "; `" << r.backend << "` " << format_us(r.dur_us);
    }
    os << "\n\n";
  }
  if (!run.skewed_phases.empty()) {
    os << "**Skewed phases:**";
    for (const std::string& name : run.skewed_phases)
      os << " `" << name << "`";
    os << "\n\n";
  }
}

void write_gate_markdown(std::ostream& os, const std::string& title,
                         const GateResult& gate) {
  os << "### " << title << "\n\n";
  os << (gate.regression() ? "❌ **REGRESSION**" : "✅ within bands") << " — "
     << gate.gated << " gated counter(s), " << gate.failed
     << " regression(s), " << gate.advisories << " advisory drift(s)\n\n";
  os << "| counter | baseline | actual | delta | band | verdict |\n"
     << "|---|---|---|---|---|---|\n";
  for (const CounterDiff& d : gate.diffs) {
    std::string verdict;
    if (d.missing)
      verdict = d.gate ? "**MISSING**" : "missing";
    else if (d.within)
      verdict = "ok";
    else
      verdict = d.gate ? "**FAIL**" : "drift";
    if (!d.gate) verdict += " (advisory)";
    os << "| `" << d.id << "` | " << fmt("%.6g", d.baseline) << " | "
       << fmt("%.6g", d.actual) << " | " << fmt("%+.2f%%", d.rel_delta * 100.0)
       << " | " << fmt("±%.0f%%", d.tolerance * 100.0) << " | " << verdict
       << " |\n";
  }
  os << "\n";
}

}  // namespace parsec::analyze
