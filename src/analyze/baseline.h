// Cost-counter baselines and the perf-regression diff.
//
// A baseline file (bench/baselines/*.json) pins the expected value of
// every gated cost counter for one exact bench invocation — effective
// unary/binary evals, masked pairs, eliminations, MasPar
// plural/scan/route ops, consistency iterations — plus advisory
// wall-time aggregates (queue wait, parse-duration sums) that are
// reported but never fail the gate.  parsec_analyze diffs a fresh
// scrape against the baseline with per-counter tolerance bands and
// exits nonzero when a gated counter leaves its band; this is the
// paper's own methodology (per-phase machine-op accounting, Fig. 8)
// turned into a CI gate.
//
// File format (JSON):
//   {
//     "workload": "<the exact bench command>",
//     "captured": "<ISO date>",
//     "counters": [
//       {"id": "parsec_effective_binary_evals_total{backend=\"serial\"}",
//        "value": 123456, "tolerance": 0.02, "gate": true},
//       ...
//     ]
//   }
//
// `tolerance` is a relative band: actual must lie within
// value ± tolerance * max(|value|, 1); the max(…, 1) floor makes a
// zero baseline demand (near-)zero actuals instead of accepting
// anything.  `gate: false` entries are advisory — diffed and printed,
// never fatal.
#pragma once

#include <string>
#include <vector>

#include "analyze/prom_reader.h"

namespace parsec::analyze {

struct BaselineEntry {
  std::string id;          // canonical series id (Sample::id())
  double value = 0.0;      // expected value
  double tolerance = 0.0;  // relative band
  bool gate = true;        // false = advisory (never fails the run)
};

struct Baseline {
  std::string workload;  // exact bench invocation the values pin
  std::string captured;  // ISO date of capture
  std::vector<BaselineEntry> entries;
};

/// Default bands used by make_baseline: op counters are deterministic
/// for a fixed workload, so their band is tight; time aggregates are
/// machine-dependent, so they are advisory with a wide band.
inline constexpr double kCounterTolerance = 0.02;
inline constexpr double kTimeTolerance = 1.0;

Baseline load_baseline(const std::string& path);
void save_baseline(const std::string& path, const Baseline& b);

/// Builds a baseline from a scrape: every deterministic parsec cost
/// counter becomes a gated entry, wall-time sums become advisory
/// entries, and per-bucket histogram series / sampled gauges are
/// skipped.  When `carry` is non-null, tolerance and gate flags of
/// entries whose id already existed are preserved (so hand-tuned
/// bands survive --update-baseline).
Baseline make_baseline(const Scrape& scrape, const std::string& workload,
                       const std::string& captured,
                       const Baseline* carry = nullptr);

/// One diffed counter.
struct CounterDiff {
  std::string id;
  double baseline = 0.0;
  double actual = 0.0;
  double rel_delta = 0.0;  // (actual - baseline) / max(|baseline|, 1)
  double tolerance = 0.0;
  bool gate = true;
  bool missing = false;  // id absent from the scrape
  bool within = true;    // inside the band (missing => false)
};

struct GateResult {
  std::vector<CounterDiff> diffs;  // baseline order
  std::size_t gated = 0;           // gate entries checked
  std::size_t failed = 0;          // gate entries out of band
  std::size_t advisories = 0;      // advisory entries out of band
  bool regression() const { return failed > 0; }
};

/// Diffs a scrape against a baseline.  Scrape series missing from the
/// baseline are ignored (they get pinned at the next --update-baseline).
GateResult diff_scrape(const Baseline& baseline, const Scrape& scrape);

}  // namespace parsec::analyze
