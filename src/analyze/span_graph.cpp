#include "analyze/span_graph.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/stats.h"

namespace parsec::analyze {

namespace {

/// Microsecond slack for containment: the writer rounds ts and dur to
/// nanosecond-precision decimals independently, so a child's end can
/// overshoot its parent's by a few thousandths.
constexpr double kNestEpsilonUs = 0.002;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

double arg_or(const TraceEvent& e, const char* key, double fallback) {
  auto it = e.args.find(key);
  return it == e.args.end() ? fallback : it->second;
}

}  // namespace

SpanForest build_span_forest(const Trace& trace) {
  SpanForest forest;
  forest.nodes.resize(trace.events.size());

  // Lane = one (pid, tid) timeline.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<int>> lanes;
  for (std::size_t i = 0; i < trace.events.size(); ++i)
    lanes[{trace.events[i].pid, trace.events[i].tid}].push_back(
        static_cast<int>(i));

  for (auto& [lane, order] : lanes) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const TraceEvent& ea = trace.events[static_cast<std::size_t>(a)];
      const TraceEvent& eb = trace.events[static_cast<std::size_t>(b)];
      if (ea.ts_us != eb.ts_us) return ea.ts_us < eb.ts_us;
      if (ea.dur_us != eb.dur_us) return ea.dur_us > eb.dur_us;
      return a < b;
    });
    std::vector<int> stack;
    for (const int idx : order) {
      const TraceEvent& e = trace.events[static_cast<std::size_t>(idx)];
      while (!stack.empty()) {
        const TraceEvent& top =
            trace.events[static_cast<std::size_t>(stack.back())];
        if (e.ts_us >= top.ts_us - kNestEpsilonUs &&
            e.end_us() <= top.end_us() + kNestEpsilonUs)
          break;  // nests inside the stack top
        stack.pop_back();
      }
      SpanNode& node = forest.nodes[static_cast<std::size_t>(idx)];
      if (stack.empty()) {
        forest.roots.push_back(idx);
      } else {
        node.parent = stack.back();
        node.depth =
            forest.nodes[static_cast<std::size_t>(stack.back())].depth + 1;
        forest.nodes[static_cast<std::size_t>(stack.back())]
            .children.push_back(idx);
      }
      stack.push_back(idx);
    }
  }

  for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
    double covered = 0.0;
    for (const int c : forest.nodes[i].children)
      covered += trace.events[static_cast<std::size_t>(c)].dur_us;
    forest.nodes[i].self_us =
        std::max(0.0, trace.events[i].dur_us - covered);
  }
  return forest;
}

namespace {

void append_segment(std::vector<PathSegment>& path, const std::string& name,
                    double us) {
  if (us <= 0.0) return;
  if (!path.empty() && path.back().name == name) {
    path.back().us += us;
    return;
  }
  path.push_back({name, us});
}

// Walks the subtree in time order, attributing every instant to the
// deepest active span.  Children are sequential within their parent
// (one thread), so the gaps between them are the parent's self time.
void walk_path(const Trace& trace, const SpanForest& forest, int node,
               std::vector<PathSegment>& path) {
  const TraceEvent& e = trace.events[static_cast<std::size_t>(node)];
  const SpanNode& sn = forest.nodes[static_cast<std::size_t>(node)];
  double cursor = e.ts_us;
  for (const int c : sn.children) {
    const TraceEvent& ce = trace.events[static_cast<std::size_t>(c)];
    append_segment(path, e.name, ce.ts_us - cursor);
    walk_path(trace, forest, c, path);
    cursor = ce.end_us();
  }
  append_segment(path, e.name, e.end_us() - cursor);
}

// The request's backend envelope: the node itself when it is one, else
// the first `backend.*` child (requests run one envelope).
int find_envelope(const Trace& trace, const SpanForest& forest, int node) {
  const TraceEvent& e = trace.events[static_cast<std::size_t>(node)];
  if (starts_with(e.name, "backend.")) return node;
  for (const int c : forest.nodes[static_cast<std::size_t>(node)].children) {
    const int found = find_envelope(trace, forest, c);
    if (found >= 0) return found;
  }
  return -1;
}

void collect_requests(const Trace& trace, const SpanForest& forest, int node,
                      bool inside_request, std::vector<int>& out) {
  const TraceEvent& e = trace.events[static_cast<std::size_t>(node)];
  const bool is_request =
      !inside_request &&
      (e.name == "serve.request" || starts_with(e.name, "backend."));
  if (is_request) {
    out.push_back(node);
    inside_request = true;
  }
  for (const int c : forest.nodes[static_cast<std::size_t>(node)].children)
    collect_requests(trace, forest, c, inside_request, out);
}

}  // namespace

std::vector<PathSegment> critical_path(const Trace& trace,
                                       const SpanForest& forest, int node) {
  std::vector<PathSegment> path;
  walk_path(trace, forest, node, path);
  return path;
}

RunAnalysis analyze_trace(const Trace& trace, const AnalyzeOptions& opt) {
  RunAnalysis run;
  run.events = trace.events.size();
  const SpanForest forest = build_span_forest(trace);

  // Wall interval + thread count.
  std::vector<std::uint32_t> tids;
  double min_ts = 0.0, max_end = 0.0;
  bool first = true;
  for (const TraceEvent& e : trace.events) {
    if (first) {
      min_ts = e.ts_us;
      max_end = e.end_us();
      first = false;
    } else {
      min_ts = std::min(min_ts, e.ts_us);
      max_end = std::max(max_end, e.end_us());
    }
    tids.push_back(e.tid);
  }
  std::sort(tids.begin(), tids.end());
  run.threads = static_cast<std::size_t>(
      std::unique(tids.begin(), tids.end()) - tids.begin());
  run.wall_us = first ? 0.0 : max_end - min_ts;

  // Per-phase aggregation.
  struct Acc {
    std::size_t count = 0;
    double total = 0.0, self = 0.0, max = 0.0;
    util::Quantiles q;
  };
  std::map<std::string, Acc> by_name;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    Acc& a = by_name[trace.events[i].name];
    ++a.count;
    a.total += trace.events[i].dur_us;
    a.self += forest.nodes[i].self_us;
    a.max = std::max(a.max, trace.events[i].dur_us);
    a.q.add(trace.events[i].dur_us);
  }
  for (auto& [name, a] : by_name) {
    PhaseStat p;
    p.name = name;
    p.count = a.count;
    p.total_us = a.total;
    p.self_us = a.self;
    p.p50_us = a.q.p50();
    p.p99_us = a.q.p99();
    p.max_us = a.max;
    p.skew = p.p50_us > 0.0 ? p.p99_us / p.p50_us : 0.0;
    run.phases.push_back(std::move(p));
    if (a.count >= opt.min_phase_count &&
        run.phases.back().skew > opt.phase_skew_factor)
      run.skewed_phases.push_back(name);
  }
  std::sort(run.phases.begin(), run.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });

  // Requests: serve.request roots plus bare backend.* envelopes.
  std::vector<int> request_nodes;
  for (const int root : forest.roots)
    collect_requests(trace, forest, root, false, request_nodes);
  std::sort(request_nodes.begin(), request_nodes.end(), [&](int a, int b) {
    return trace.events[static_cast<std::size_t>(a)].ts_us <
           trace.events[static_cast<std::size_t>(b)].ts_us;
  });

  util::Quantiles req_durs;
  std::map<std::string, double> profile;
  for (const int node : request_nodes) {
    const TraceEvent& e = trace.events[static_cast<std::size_t>(node)];
    RequestStat r;
    r.root_name = e.name;
    r.tid = e.tid;
    r.start_us = e.ts_us;
    r.dur_us = e.dur_us;
    r.queue_us = arg_or(e, "queue_us", 0.0);
    const int env = find_envelope(trace, forest, node);
    if (env >= 0) {
      const TraceEvent& env_e = trace.events[static_cast<std::size_t>(env)];
      r.backend = env_e.name.substr(std::string("backend.").size());
      r.n = static_cast<long>(arg_or(env_e, "n", -1.0));
      r.accepted = static_cast<int>(arg_or(env_e, "accepted", -1.0));
    } else {
      r.backend = "?";
    }
    // serve.request carries n/accepted too (worker-side view) and
    // wins when the envelope had no args.
    if (r.n < 0) r.n = static_cast<long>(arg_or(e, "n", -1.0));
    if (r.accepted < 0)
      r.accepted = static_cast<int>(arg_or(e, "accepted", -1.0));
    r.path = critical_path(trace, forest, node);
    for (const PathSegment& seg : r.path) profile[seg.name] += seg.us;
    req_durs.add(r.dur_us);
    run.requests.push_back(std::move(r));
  }
  run.request_median_us = req_durs.p50();
  run.request_p99_us = req_durs.p99();
  for (std::size_t i = 0; i < run.requests.size(); ++i) {
    if (run.requests.size() >= 2 && run.request_median_us > 0.0 &&
        run.requests[i].dur_us >
            opt.straggler_factor * run.request_median_us) {
      run.requests[i].straggler = true;
      run.stragglers.push_back(i);
    }
  }
  for (const auto& [name, us] : profile) run.profile.push_back({name, us});
  std::sort(run.profile.begin(), run.profile.end(),
            [](const PathSegment& a, const PathSegment& b) {
              if (a.us != b.us) return a.us > b.us;
              return a.name < b.name;
            });
  return run;
}

}  // namespace parsec::analyze
