// Textual grammar format: load and save complete CDG grammar bundles.
//
// A grammar file is a sequence of s-expressions in the constraint
// language's own syntax, so grammars can be authored, versioned and
// shipped without recompiling:
//
//   (grammar
//     (categories det noun verb)
//     (labels SUBJ NP ROOT S DET BLANK)
//     (roles governor needs)
//     (table (governor SUBJ ROOT DET)
//            (needs NP S BLANK))
//     ;; optional category-refined entries: (role category label...)
//     (table-for-category (governor det DET))
//     (constraint verbs-are-roots
//       (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
//           (and (eq (lab x) ROOT) (eq (mod x) nil)))))
//   (lexicon
//     (the det)
//     (run verb noun))   ; first category is the preferred tag
//
// save_cdg_bundle() emits exactly this format; load(save(b)) produces a
// behaviourally identical bundle (round-trip tested).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "grammars/toy_grammar.h"

namespace parsec::grammars {

struct GrammarIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses a bundle from grammar-file text.  Throws GrammarIoError with
/// source positions on malformed input.
CdgBundle load_cdg_bundle(std::string_view text);

/// Loads from a file path.
CdgBundle load_cdg_bundle_file(const std::string& path);

/// Serializes grammar + lexicon to the textual format.
std::string save_cdg_bundle(const CdgBundle& bundle);

}  // namespace parsec::grammars
