// Textual grammar format: load and save complete CDG grammar bundles.
//
// A grammar file is a sequence of s-expressions in the constraint
// language's own syntax, so grammars can be authored, versioned and
// shipped without recompiling:
//
//   (grammar
//     (categories det noun verb)
//     (labels SUBJ NP ROOT S DET BLANK)
//     (roles governor needs)
//     (table (governor SUBJ ROOT DET)
//            (needs NP S BLANK))
//     ;; optional category-refined entries: (role category label...)
//     (table-for-category (governor det DET))
//     (constraint verbs-are-roots
//       (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
//           (and (eq (lab x) ROOT) (eq (mod x) nil)))))
//   (lexicon
//     (the det)
//     (run verb noun))   ; first category is the preferred tag
//
// save_cdg_bundle() emits exactly this format; load(save(b)) produces a
// behaviourally identical bundle (round-trip tested).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "grammars/toy_grammar.h"

namespace parsec::grammars {

/// Load/validation failure, carrying the source position of the
/// offending form so hot-reload failures are diagnosable from logs:
/// 1-based line/col (0 = no location, e.g. a missing file) and the
/// 0-based byte offset into the grammar text (kNoOffset = unknown).
/// what() reads "<msg> at <line>:<col>" when a location is known.
struct GrammarIoError : std::runtime_error {
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  /// Location-less error (missing file, no grammar form).
  explicit GrammarIoError(const std::string& msg) : std::runtime_error(msg) {}

  /// Error anchored at a source position; the location is appended to
  /// the message.
  GrammarIoError(const std::string& msg, int line_in, int col_in,
                 std::size_t byte_offset_in = kNoOffset)
      : std::runtime_error(msg + " at " + std::to_string(line_in) + ":" +
                           std::to_string(col_in)),
        line(line_in),
        col(col_in),
        byte_offset(byte_offset_in) {}

  int line = 0;
  int col = 0;
  std::size_t byte_offset = kNoOffset;
};

/// Parses a bundle from grammar-file text.  Throws GrammarIoError with
/// source positions (line/col and byte offset) on malformed input.
CdgBundle load_cdg_bundle(std::string_view text);

/// Loads from a file path.  Load errors are rethrown with the path
/// prepended to the message (positions preserved).
CdgBundle load_cdg_bundle_file(const std::string& path);

/// Serializes grammar + lexicon to the textual format.
std::string save_cdg_bundle(const CdgBundle& bundle);

}  // namespace parsec::grammars
