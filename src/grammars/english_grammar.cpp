#include "grammars/english_grammar.h"

namespace parsec::grammars {

using cdg::Grammar;

const char* kProjectivityConstraint = R"(
    (if (and (eq (role x) governor)
             (eq (role y) governor)
             (or (and (lt (pos x) (mod x)) (lt (pos y) (mod y))
                      (lt (pos x) (pos y)) (lt (pos y) (mod x))
                      (gt (mod y) (mod x)))
                 (and (lt (pos x) (mod x)) (gt (pos y) (mod y))
                      (not (eq (mod y) nil))
                      (lt (pos x) (mod y)) (lt (mod y) (mod x))
                      (gt (pos y) (mod x)))
                 (and (gt (pos x) (mod x)) (not (eq (mod x) nil))
                      (lt (pos y) (mod y))
                      (lt (mod x) (pos y)) (lt (pos y) (pos x))
                      (gt (mod y) (pos x)))
                 (and (gt (pos x) (mod x)) (not (eq (mod x) nil))
                      (gt (pos y) (mod y)) (not (eq (mod y) nil))
                      (lt (mod x) (mod y)) (lt (mod y) (pos x))
                      (gt (pos y) (pos x)))))
        (eq 1 2)))";

CdgBundle make_english_grammar(EnglishOptions opt) {
  CdgBundle b;
  Grammar& g = b.grammar;

  // Categories.
  const auto det = g.add_category("det");
  const auto adj = g.add_category("adj");
  const auto noun = g.add_category("noun");
  const auto verb = g.add_category("verb");
  const auto prep = g.add_category("prep");
  const auto propn = g.add_category("propn");
  const auto pron = g.add_category("pron");
  const auto adv = g.add_category("adv");

  // Labels.  Governor: the function a word fills for its head.
  const auto DET = g.add_label("DET");    // determiner of a noun
  const auto MOD = g.add_label("MOD");    // attributive adjective
  const auto SUBJ = g.add_label("SUBJ");  // subject of the verb
  const auto OBJ = g.add_label("OBJ");    // direct object
  const auto POBJ = g.add_label("POBJ");  // object of a preposition
  const auto ROOT = g.add_label("ROOT");  // main verb
  const auto PREP = g.add_label("PREP");  // preposition attaching left
  const auto ADV = g.add_label("ADV");    // adverb modifying the verb
  // Needs: what a word requires to be complete.
  const auto NP = g.add_label("NP");      // noun needs its determiner
  const auto S = g.add_label("S");        // verb needs its subject
  const auto PN = g.add_label("PN");      // preposition needs its object
  const auto BLANK = g.add_label("BLANK");

  const auto governor = g.add_role("governor");
  const auto needs = g.add_role("needs");

  // Table T refined by category (§1.1 footnote: "we also restrict
  // labels by using word category information").
  g.allow_label_for_category(governor, det, DET);
  g.allow_label_for_category(governor, adj, MOD);
  for (auto nom : {noun, propn, pron}) {
    g.allow_label_for_category(governor, nom, SUBJ);
    g.allow_label_for_category(governor, nom, OBJ);
    g.allow_label_for_category(governor, nom, POBJ);
  }
  g.allow_label_for_category(governor, verb, ROOT);
  g.allow_label_for_category(governor, prep, PREP);
  g.allow_label_for_category(governor, adv, ADV);
  g.allow_label_for_category(needs, noun, NP);
  g.allow_label_for_category(needs, verb, S);
  g.allow_label_for_category(needs, prep, PN);
  for (auto c : {det, adj, propn, pron, adv})
    g.allow_label_for_category(needs, c, BLANK);

  // ---- unary constraints ----------------------------------------------
  // Determiners modify a noun to their right.
  g.add_constraint_text("det-governor", R"(
      (if (and (eq (cat (word (pos x))) det) (eq (role x) governor))
          (and (eq (lab x) DET)
               (gt (mod x) (pos x))
               (eq (cat (word (mod x))) noun))))");
  g.add_constraint_text("det-needs", R"(
      (if (and (eq (cat (word (pos x))) det) (eq (role x) needs))
          (and (eq (lab x) BLANK) (eq (mod x) nil))))");
  // Adjectives modify a noun to their right.
  g.add_constraint_text("adj-governor", R"(
      (if (and (eq (cat (word (pos x))) adj) (eq (role x) governor))
          (and (eq (lab x) MOD)
               (gt (mod x) (pos x))
               (eq (cat (word (mod x))) noun))))");
  g.add_constraint_text("adj-needs", R"(
      (if (and (eq (cat (word (pos x))) adj) (eq (role x) needs))
          (and (eq (lab x) BLANK) (eq (mod x) nil))))");
  // Nominals (nouns, proper nouns, pronouns) are subjects of a verb to
  // their right, or objects of a verb / preposition to their left.
  g.add_constraint_text("nominal-governor", R"(
      (if (and (or (eq (cat (word (pos x))) noun)
                   (eq (cat (word (pos x))) propn)
                   (eq (cat (word (pos x))) pron))
               (eq (role x) governor))
          (or (and (eq (lab x) SUBJ)
                   (gt (mod x) (pos x))
                   (eq (cat (word (mod x))) verb))
              (and (eq (lab x) OBJ)
                   (not (eq (mod x) nil))
                   (lt (mod x) (pos x))
                   (eq (cat (word (mod x))) verb))
              (and (eq (lab x) POBJ)
                   (not (eq (mod x) nil))
                   (lt (mod x) (pos x))
                   (eq (cat (word (mod x))) prep)))))");
  // Common nouns need a determiner to their left.
  g.add_constraint_text("noun-needs-det", R"(
      (if (and (eq (cat (word (pos x))) noun) (eq (role x) needs))
          (and (eq (lab x) NP)
               (not (eq (mod x) nil))
               (lt (mod x) (pos x))
               (eq (cat (word (mod x))) det))))");
  // Proper nouns and pronouns need nothing.
  g.add_constraint_text("propn-pron-needs", R"(
      (if (and (or (eq (cat (word (pos x))) propn)
                   (eq (cat (word (pos x))) pron))
               (eq (role x) needs))
          (and (eq (lab x) BLANK) (eq (mod x) nil))))");
  // The main verb is the ungoverned root.
  g.add_constraint_text("verb-governor", R"(
      (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
          (and (eq (lab x) ROOT) (eq (mod x) nil))))");
  // A verb needs a nominal subject to its left.
  g.add_constraint_text("verb-needs-subj", R"(
      (if (and (eq (cat (word (pos x))) verb) (eq (role x) needs))
          (and (eq (lab x) S)
               (not (eq (mod x) nil))
               (lt (mod x) (pos x))
               (or (eq (cat (word (mod x))) noun)
                   (eq (cat (word (mod x))) propn)
                   (eq (cat (word (mod x))) pron)))))");
  // Adverbs modify a verb, on either side.
  g.add_constraint_text("adv-governor", R"(
      (if (and (eq (cat (word (pos x))) adv) (eq (role x) governor))
          (and (eq (lab x) ADV)
               (not (eq (mod x) nil))
               (eq (cat (word (mod x))) verb))))");
  g.add_constraint_text("adv-needs", R"(
      (if (and (eq (cat (word (pos x))) adv) (eq (role x) needs))
          (and (eq (lab x) BLANK) (eq (mod x) nil))))");
  // Prepositions attach to a noun or the verb to their left...
  g.add_constraint_text("prep-governor", R"(
      (if (and (eq (cat (word (pos x))) prep) (eq (role x) governor))
          (and (eq (lab x) PREP)
               (not (eq (mod x) nil))
               (lt (mod x) (pos x))
               (or (eq (cat (word (mod x))) noun)
                   (eq (cat (word (mod x))) verb)
                   (eq (cat (word (mod x))) propn)
                   (eq (cat (word (mod x))) pron)))))");
  // ...and need a nominal object to their right.
  g.add_constraint_text("prep-needs-pobj", R"(
      (if (and (eq (cat (word (pos x))) prep) (eq (role x) needs))
          (and (eq (lab x) PN)
               (gt (mod x) (pos x))
               (or (eq (cat (word (mod x))) noun)
                   (eq (cat (word (mod x))) propn)
                   (eq (cat (word (mod x))) pron)))))");

  // ---- binary constraints ---------------------------------------------
  // Uniqueness: two distinct words cannot fill the same function for
  // the same head ("(eq (pos x) (pos y)) is false for role values of
  // different words", so violating pairs are zeroed).
  for (const char* lab : {"SUBJ", "OBJ", "DET", "POBJ"}) {
    g.add_constraint_text(
        std::string("unique-") + lab,
        "(if (and (eq (lab x) " + std::string(lab) + ") (eq (lab y) " + lab +
            ") (eq (mod x) (mod y)) (not (eq (mod x) nil)))"
            " (eq (pos x) (pos y)))");
  }
  // Mutual-pointer coherence: the verb's S-need and the noun's SUBJ
  // must agree (both directions), and likewise NP<->DET, PN<->POBJ.
  const struct {
    const char* need;
    const char* gov;
  } pairs[] = {{"S", "SUBJ"}, {"NP", "DET"}, {"PN", "POBJ"}};
  for (const auto& p : pairs) {
    g.add_constraint_text(
        std::string("pair-") + p.need + "-" + p.gov + "-fwd",
        "(if (and (eq (lab x) " + std::string(p.need) + ") (eq (lab y) " +
            p.gov + ") (eq (mod x) (pos y))) (eq (mod y) (pos x)))");
    g.add_constraint_text(
        std::string("pair-") + p.need + "-" + p.gov + "-bwd",
        "(if (and (eq (lab x) " + std::string(p.need) + ") (eq (lab y) " +
            p.gov + ") (eq (mod y) (pos x))) (eq (mod x) (pos y)))");
  }
  if (opt.projectivity)
    g.add_constraint_text("projectivity", kProjectivityConstraint);

  // ---- lexicon -----------------------------------------------------------
  auto add_all = [&](std::initializer_list<const char*> words,
                     const char* cat) {
    for (const char* w : words) b.lexicon.add(g, w, {cat});
  };
  add_all({"the", "The", "a", "A", "an", "An", "this", "that", "every",
           "some"},
          "det");
  add_all({"big", "small", "fast", "slow", "old", "new", "red", "lazy",
           "quick", "bright", "dark", "strange", "quiet"},
          "adj");
  add_all({"dog", "cat", "program", "compiler", "parser", "sentence",
           "machine", "router", "processor", "grammar", "table", "park",
           "house", "network", "word", "student", "professor", "telescope",
           "garden", "book"},
          "noun");
  add_all({"runs", "halts", "crashes", "sees", "parses", "likes", "chases",
           "builds", "reads", "finds", "watches", "compiles"},
          "verb");
  add_all({"in", "on", "with", "near", "under", "over", "beside"}, "prep");
  add_all({"quickly", "slowly", "quietly", "often", "carefully"}, "adv");
  add_all({"Randall", "Mary", "Purdue", "Kosaraju", "Maruyama"}, "propn");
  add_all({"it", "she", "he"}, "pron");
  // Lexically ambiguous entries (first category = preferred tag); used
  // by SequentialParser::parse_any_tagging and its tests.
  b.lexicon.add(g, "watch", {"verb", "noun"});
  b.lexicon.add(g, "run", {"verb", "noun"});
  b.lexicon.add(g, "light", {"noun", "adj"});
  return b;
}

}  // namespace parsec::grammars
