// Workload generator: grammatical English sentences of target length.
//
// The paper reports timings as a function of sentence length (Results
// §3); this generator produces deterministic, parseable inputs for
// those sweeps:   S -> NP verb (NP)? PP*,  NP -> det adj* noun | propn
// | pron,  PP -> prep NP, with the adjective/PP counts stretched to hit
// the requested word count exactly.
#pragma once

#include <string>
#include <vector>

#include "grammars/english_grammar.h"
#include "util/rng.h"

namespace parsec::grammars {

class SentenceGenerator {
 public:
  /// `bundle` must be the English grammar (the generator draws words
  /// from its lexicon's category pools).
  SentenceGenerator(const CdgBundle& bundle, std::uint64_t seed = 42);

  /// A grammatical sentence of exactly `n` words (n >= 2).
  std::vector<std::string> generate(int n);

  /// Tagged form, ready for parsing.
  cdg::Sentence generate_sentence(int n);

 private:
  const std::string& pick(const std::vector<std::string>& pool);

  const CdgBundle* bundle_;
  util::Rng rng_;
  std::vector<std::string> dets_, adjs_, nouns_, verbs_, preps_, propns_,
      prons_, advs_;
};

}  // namespace parsec::grammars
