#include "grammars/cfg_workloads.h"

namespace parsec::grammars {

using cfg::Grammar;
using cfg::Symbol;

Grammar make_paren_grammar() {
  Grammar g;
  g.set_start(g.add_nonterminal("S"));
  g.add_rule("S", {"S", "S"});
  g.add_rule("S", {"(", "S", ")"});
  g.add_rule("S", {"(", ")"});
  return g;
}

Grammar make_expr_grammar() {
  Grammar g;
  g.set_start(g.add_nonterminal("E"));
  g.add_nonterminal("T");
  g.add_nonterminal("F");
  g.add_rule("E", {"E", "+", "T"});
  g.add_rule("E", {"T"});
  g.add_rule("T", {"T", "*", "F"});
  g.add_rule("T", {"F"});
  g.add_rule("F", {"(", "E", ")"});
  g.add_rule("F", {"id"});
  return g;
}

Grammar make_palindrome_grammar() {
  Grammar g;
  g.set_start(g.add_nonterminal("S"));
  g.add_rule("S", {"a", "S", "a"});
  g.add_rule("S", {"b", "S", "b"});
  g.add_rule("S", {"a", "a"});
  g.add_rule("S", {"b", "b"});
  g.add_rule("S", {"a"});
  g.add_rule("S", {"b"});
  return g;
}

Grammar make_english_cfg() {
  Grammar g;
  g.set_start(g.add_nonterminal("S"));
  for (const char* nt : {"NP", "VP", "PP", "N1"}) g.add_nonterminal(nt);
  g.add_rule("S", {"NP", "VP"});
  g.add_rule("VP", {"verb"});
  g.add_rule("VP", {"verb", "NP"});
  g.add_rule("VP", {"VP", "PP"});
  g.add_rule("NP", {"det", "N1"});
  g.add_rule("NP", {"propn"});
  g.add_rule("NP", {"pron"});
  g.add_rule("NP", {"NP", "PP"});
  g.add_rule("N1", {"noun"});
  g.add_rule("N1", {"adj", "N1"});
  g.add_rule("PP", {"prep", "NP"});
  return g;
}

namespace {

/// Shortest terminal yield per nonterminal (epsilon-free: >= 1).
std::vector<std::size_t> min_yields(const cfg::Grammar& g) {
  const std::size_t kInf = 1u << 20;
  std::vector<std::size_t> min_yield(g.num_nonterminals(), kInf);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& p : g.productions()) {
      std::size_t total = 0;
      for (const auto& s : p.rhs)
        total += s.kind == Symbol::Kind::Terminal ? 1 : min_yield[s.id];
      if (total < min_yield[p.lhs]) {
        min_yield[p.lhs] = total;
        changed = true;
      }
    }
  }
  return min_yield;
}

}  // namespace

std::optional<std::vector<int>> sample_string(const cfg::Grammar& g,
                                              util::Rng& rng,
                                              std::size_t max_len) {
  // Randomized leftmost derivation; an expansion is only eligible if
  // the form's minimum completed length stays within the budget, so the
  // sampler never paints itself into a corner.
  const auto min_yield = min_yields(g);
  auto form_min_total = [&](const std::vector<Symbol>& f) {
    std::size_t total = 0;
    for (const auto& s : f)
      total += s.kind == Symbol::Kind::Terminal ? 1 : min_yield[s.id];
    return total;
  };

  std::vector<Symbol> form{Symbol{Symbol::Kind::Nonterminal, g.start()}};
  const std::size_t kMaxSteps = 10000;
  for (std::size_t step = 0; step < kMaxSteps; ++step) {
    std::size_t i = 0;
    while (i < form.size() && form[i].kind == Symbol::Kind::Terminal) ++i;
    if (i == form.size()) {
      if (form.size() > max_len || form.empty()) return std::nullopt;
      std::vector<int> out;
      for (const auto& s : form) out.push_back(s.id);
      return out;
    }
    const std::size_t base = form_min_total(form) - min_yield[form[i].id];
    std::vector<const cfg::Production*> cands;
    for (const auto& p : g.productions()) {
      if (p.lhs != form[i].id) continue;
      std::size_t rhs_min = 0;
      for (const auto& s : p.rhs)
        rhs_min += s.kind == Symbol::Kind::Terminal ? 1 : min_yield[s.id];
      if (base + rhs_min <= max_len) cands.push_back(&p);
    }
    if (cands.empty()) return std::nullopt;
    const cfg::Production* choice = cands[rng.next_below(cands.size())];
    std::vector<Symbol> next;
    next.reserve(form.size() + choice->rhs.size() - 1);
    next.insert(next.end(), form.begin(), form.begin() + i);
    next.insert(next.end(), choice->rhs.begin(), choice->rhs.end());
    next.insert(next.end(), form.begin() + i + 1, form.end());
    form = std::move(next);
  }
  return std::nullopt;
}

std::optional<std::vector<int>> sample_string_of_length(
    const cfg::Grammar& g, util::Rng& rng, std::size_t len, int retries) {
  for (int i = 0; i < retries; ++i) {
    auto s = sample_string(g, rng, len);
    if (s && s->size() == len) return s;
  }
  return std::nullopt;
}

}  // namespace parsec::grammars
