#include "grammars/anbncn_grammar.h"

namespace parsec::grammars {

using cdg::Grammar;

CdgBundle make_anbncn_grammar() {
  CdgBundle b;
  Grammar& g = b.grammar;

  const auto a = g.add_category("a");
  const auto bb = g.add_category("b");
  const auto c = g.add_category("c");

  const auto GA = g.add_label("GA");  // a's link to its b
  const auto GB = g.add_label("GB");  // b's link to its c
  const auto GC = g.add_label("GC");  // c links nothing
  const auto NA = g.add_label("NA");  // b's back-link to its a
  const auto NB = g.add_label("NB");  // c's back-link to its b
  const auto BLANK = g.add_label("BLANK");

  const auto governor = g.add_role("governor");
  const auto needs = g.add_role("needs");

  g.allow_label_for_category(governor, a, GA);
  g.allow_label_for_category(governor, bb, GB);
  g.allow_label_for_category(governor, c, GC);
  g.allow_label_for_category(needs, a, BLANK);
  g.allow_label_for_category(needs, bb, NA);
  g.allow_label_for_category(needs, c, NB);

  // ---- unary: link directions and target categories -------------------
  g.add_constraint_text("a-links-b-right", R"(
      (if (and (eq (cat (word (pos x))) a) (eq (role x) governor))
          (and (eq (lab x) GA)
               (gt (mod x) (pos x))
               (eq (cat (word (mod x))) b))))");
  g.add_constraint_text("a-needs-nothing", R"(
      (if (and (eq (cat (word (pos x))) a) (eq (role x) needs))
          (and (eq (lab x) BLANK) (eq (mod x) nil))))");
  g.add_constraint_text("b-links-c-right", R"(
      (if (and (eq (cat (word (pos x))) b) (eq (role x) governor))
          (and (eq (lab x) GB)
               (gt (mod x) (pos x))
               (eq (cat (word (mod x))) c))))");
  g.add_constraint_text("b-needs-a-left", R"(
      (if (and (eq (cat (word (pos x))) b) (eq (role x) needs))
          (and (eq (lab x) NA)
               (not (eq (mod x) nil))
               (lt (mod x) (pos x))
               (eq (cat (word (mod x))) a))))");
  g.add_constraint_text("c-links-nothing", R"(
      (if (and (eq (cat (word (pos x))) c) (eq (role x) governor))
          (and (eq (lab x) GC) (eq (mod x) nil))))");
  g.add_constraint_text("c-needs-b-left", R"(
      (if (and (eq (cat (word (pos x))) c) (eq (role x) needs))
          (and (eq (lab x) NB)
               (not (eq (mod x) nil))
               (lt (mod x) (pos x))
               (eq (cat (word (mod x))) b))))");

  // ---- binary: bijection + order ---------------------------------------
  // Injectivity of the forward links.
  for (const char* lab : {"GA", "GB"}) {
    g.add_constraint_text(
        std::string("unique-") + lab,
        "(if (and (eq (lab x) " + std::string(lab) + ") (eq (lab y) " + lab +
            ") (eq (mod x) (mod y))) (eq (pos x) (pos y)))");
  }
  // Mutual pointers: GA <-> NA and GB <-> NB (both directions each).
  const struct {
    const char* need;
    const char* gov;
  } pairs[] = {{"NA", "GA"}, {"NB", "GB"}};
  for (const auto& p : pairs) {
    g.add_constraint_text(
        std::string("pair-") + p.need + "-fwd",
        "(if (and (eq (lab x) " + std::string(p.need) + ") (eq (lab y) " +
            p.gov + ") (eq (mod x) (pos y))) (eq (mod y) (pos x)))");
    g.add_constraint_text(
        std::string("pair-") + p.need + "-bwd",
        "(if (and (eq (lab x) " + std::string(p.need) + ") (eq (lab y) " +
            p.gov + ") (eq (mod y) (pos x))) (eq (mod x) (pos y)))");
  }
  // Order preservation makes the matching unique (and keeps the CN
  // unambiguous for a^n b^n c^n).
  for (const char* lab : {"GA", "GB"}) {
    g.add_constraint_text(
        std::string("order-") + lab,
        "(if (and (eq (lab x) " + std::string(lab) + ") (eq (lab y) " + lab +
            ") (lt (pos x) (pos y))) (lt (mod x) (mod y)))");
  }
  // Block structure: all a's precede all b's precede all c's.
  g.add_constraint_text("a-before-b", R"(
      (if (and (eq (cat (word (pos x))) a) (eq (cat (word (pos y))) b))
          (lt (pos x) (pos y))))");
  g.add_constraint_text("b-before-c", R"(
      (if (and (eq (cat (word (pos x))) b) (eq (cat (word (pos y))) c))
          (lt (pos x) (pos y))))");

  b.lexicon.add(g, "a", {"a"});
  b.lexicon.add(g, "b", {"b"});
  b.lexicon.add(g, "c", {"c"});
  (void)GA;
  (void)GB;
  (void)GC;
  (void)NA;
  (void)NB;
  (void)BLANK;
  return b;
}

std::string anbncn_string(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out += "a ";
  for (int i = 0; i < n; ++i) out += "b ";
  for (int i = 0; i < n; ++i) out += "c ";
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace parsec::grammars
