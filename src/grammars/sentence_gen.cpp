#include "grammars/sentence_gen.h"

#include <stdexcept>

namespace parsec::grammars {

SentenceGenerator::SentenceGenerator(const CdgBundle& bundle,
                                     std::uint64_t seed)
    : bundle_(&bundle), rng_(seed) {
  const auto& g = bundle.grammar;
  // Word pools by category (lowercase forms only, to keep tagging
  // deterministic).
  const auto classify = [&](const std::string& word) -> std::string {
    return g.category_name(bundle.lexicon.categories(word).front());
  };
  for (const auto* w :
       {"the", "a", "this", "that", "every", "some"})
    if (bundle.lexicon.contains(w) && classify(w) == "det")
      dets_.push_back(w);
  for (const auto* w : {"big", "small", "fast", "slow", "old", "new", "red",
                        "lazy", "quick", "bright", "dark", "strange",
                        "quiet"})
    if (bundle.lexicon.contains(w) && classify(w) == "adj")
      adjs_.push_back(w);
  for (const auto* w :
       {"dog", "cat", "program", "compiler", "parser", "sentence", "machine",
        "router", "processor", "grammar", "table", "park", "house",
        "network", "word", "student", "professor", "telescope", "garden",
        "book"})
    if (bundle.lexicon.contains(w) && classify(w) == "noun")
      nouns_.push_back(w);
  for (const auto* w : {"runs", "halts", "crashes", "sees", "parses",
                        "likes", "chases", "builds", "reads", "finds",
                        "watches", "compiles"})
    if (bundle.lexicon.contains(w) && classify(w) == "verb")
      verbs_.push_back(w);
  for (const auto* w : {"in", "on", "with", "near", "under", "over",
                        "beside"})
    if (bundle.lexicon.contains(w) && classify(w) == "prep")
      preps_.push_back(w);
  for (const auto* w : {"quickly", "slowly", "quietly", "often",
                        "carefully"})
    if (bundle.lexicon.contains(w) && classify(w) == "adv")
      advs_.push_back(w);
  for (const auto* w : {"Randall", "Mary", "Purdue", "Kosaraju", "Maruyama"})
    if (bundle.lexicon.contains(w) && classify(w) == "propn")
      propns_.push_back(w);
  for (const auto* w : {"it", "she", "he"})
    if (bundle.lexicon.contains(w) && classify(w) == "pron")
      prons_.push_back(w);
  if (dets_.empty() || nouns_.empty() || verbs_.empty() || preps_.empty())
    throw std::invalid_argument(
        "SentenceGenerator needs the English grammar bundle");
}

const std::string& SentenceGenerator::pick(
    const std::vector<std::string>& pool) {
  return pool[rng_.next_below(pool.size())];
}

std::vector<std::string> SentenceGenerator::generate(int n) {
  if (n < 2)
    throw std::invalid_argument("need at least 2 words (subject + verb)");
  // Word budget: subject NP + verb + optional object NP + PPs; NPs are
  // det (adj)* noun (>= 2 words) or a 1-word pronoun / proper noun.
  // Plan in units, then stretch NPs with adjectives to hit n exactly.
  std::vector<std::string> words;

  // Minimal skeletons per n:
  //   n == 2: propn verb
  //   n == 3: det noun verb
  //   n >= 4: det noun verb + remainder split into object/PPs/adjs.
  if (n == 2) {
    words.push_back(pick(propns_.empty() ? prons_ : propns_));
    words.push_back(pick(verbs_));
    return words;
  }

  int remaining = n - 3;  // efter "det noun verb"
  int subj_adjs = 0;
  // Decide object and PP count from the remaining budget.
  bool object = false;
  int pps = 0;
  if (remaining >= 2 && rng_.next_bool(0.6)) {
    object = true;
    remaining -= 2;  // det noun
  }
  while (remaining >= 3 && rng_.next_bool(0.7)) {
    ++pps;
    remaining -= 3;  // prep det noun
  }
  // One leftover word may become a verb-modifying adverb.
  bool adverb = false;
  if (remaining >= 1 && !advs_.empty() && rng_.next_bool(0.4)) {
    adverb = true;
    --remaining;
  }
  // Whatever is left becomes adjectives, spread over the NPs.
  std::vector<int> adj_slots(1 + (object ? 1 : 0) + pps, 0);
  for (int i = 0; remaining > 0; --remaining, ++i)
    ++adj_slots[i % adj_slots.size()];
  std::size_t slot = 0;

  auto emit_np = [&](int adjs) {
    words.push_back(pick(dets_));
    for (int i = 0; i < adjs; ++i) words.push_back(pick(adjs_));
    words.push_back(pick(nouns_));
  };

  subj_adjs = adj_slots[slot++];
  emit_np(subj_adjs);
  words.push_back(pick(verbs_));
  if (adverb) words.push_back(pick(advs_));
  if (object) emit_np(adj_slots[slot++]);
  for (int i = 0; i < pps; ++i) {
    words.push_back(pick(preps_));
    emit_np(adj_slots[slot++]);
  }
  if (static_cast<int>(words.size()) != n)
    throw std::logic_error("sentence plan missed the target length");
  return words;
}

cdg::Sentence SentenceGenerator::generate_sentence(int n) {
  return bundle_->lexicon.tag(generate(n));
}

}  // namespace parsec::grammars
