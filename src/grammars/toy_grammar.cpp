#include "grammars/toy_grammar.h"

#include <sstream>

namespace parsec::grammars {

using cdg::Grammar;

std::vector<std::string> split_words(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

cdg::Sentence CdgBundle::tag(const std::string& text) const {
  return lexicon.tag(split_words(text));
}

CdgBundle make_toy_grammar() {
  CdgBundle b;
  Grammar& g = b.grammar;

  // Terminals (categories).
  g.add_category("det");
  g.add_category("noun");
  g.add_category("verb");

  // Labels L = {SUBJ, NP, ROOT, S, DET, BLANK}.
  g.add_label("SUBJ");
  g.add_label("NP");
  g.add_label("ROOT");
  g.add_label("S");
  g.add_label("DET");
  g.add_label("BLANK");

  // Roles R = {governor, needs}.
  const cdg::RoleId governor = g.add_role("governor");
  const cdg::RoleId needs = g.add_role("needs");

  // Table T (§1.1): governor may hold SUBJ/ROOT/DET, needs may hold
  // NP/S/BLANK.
  g.allow_label(governor, g.label("SUBJ"));
  g.allow_label(governor, g.label("ROOT"));
  g.allow_label(governor, g.label("DET"));
  g.allow_label(needs, g.label("NP"));
  g.allow_label(needs, g.label("S"));
  g.allow_label(needs, g.label("BLANK"));

  // ---- unary constraints, verbatim from §1.3, in paper order ---------
  g.add_constraint_text("verbs-are-ungoverned-roots", R"(
      (if (and (eq (cat (word (pos x))) verb)
               (eq (role x) governor))
          (and (eq (lab x) ROOT)
               (eq (mod x) nil))))");
  g.add_constraint_text("verbs-need-s-modifying", R"(
      (if (and (eq (cat (word (pos x))) verb)
               (eq (role x) needs))
          (and (eq (lab x) S)
               (not (eq (mod x) nil)))))");
  g.add_constraint_text("nouns-are-subjects", R"(
      (if (and (eq (cat (word (pos x))) noun)
               (eq (role x) governor))
          (and (eq (lab x) SUBJ)
               (not (eq (mod x) nil)))))");
  g.add_constraint_text("nouns-need-np", R"(
      (if (and (eq (cat (word (pos x))) noun)
               (eq (role x) needs))
          (and (eq (lab x) NP)
               (not (eq (mod x) nil)))))");
  g.add_constraint_text("dets-are-det-labeled", R"(
      (if (and (eq (cat (word (pos x))) det)
               (eq (role x) governor))
          (and (eq (lab x) DET)
               (not (eq (mod x) nil)))))");
  g.add_constraint_text("dets-need-nothing", R"(
      (if (and (eq (cat (word (pos x))) det)
               (eq (role x) needs))
          (and (eq (lab x) BLANK)
               (eq (mod x) nil))))");

  // ---- binary constraints, verbatim from §1.3, in paper order --------
  g.add_constraint_text("subj-governed-by-root-to-right", R"(
      (if (and (eq (lab x) SUBJ)
               (eq (lab y) ROOT))
          (and (eq (mod x) (pos y))
               (lt (pos x) (pos y)))))");
  g.add_constraint_text("s-needs-subj-to-left", R"(
      (if (and (eq (lab x) S)
               (eq (lab y) SUBJ))
          (and (eq (mod x) (pos y))
               (gt (pos x) (pos y)))))");
  g.add_constraint_text("det-governed-by-noun-to-right", R"(
      (if (and (eq (lab x) DET)
               (eq (cat (word (pos y))) noun))
          (and (eq (mod x) (pos y))
               (lt (pos x) (pos y)))))");
  g.add_constraint_text("np-needs-det-to-left", R"(
      (if (and (eq (lab x) NP)
               (eq (lab y) DET))
          (and (eq (mod x) (pos y))
               (gt (pos x) (pos y)))))");

  // Lexicon for the worked example and nearby test sentences.
  b.lexicon.add(g, "The", {"det"});
  b.lexicon.add(g, "the", {"det"});
  b.lexicon.add(g, "A", {"det"});
  b.lexicon.add(g, "a", {"det"});
  b.lexicon.add(g, "program", {"noun"});
  b.lexicon.add(g, "dog", {"noun"});
  b.lexicon.add(g, "compiler", {"noun"});
  b.lexicon.add(g, "runs", {"verb"});
  b.lexicon.add(g, "halts", {"verb"});
  b.lexicon.add(g, "crashes", {"verb"});
  return b;
}

}  // namespace parsec::grammars
