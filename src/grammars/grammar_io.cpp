#include "grammars/grammar_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "cdg/constraint_parser.h"
#include "util/sexpr.h"

namespace parsec::grammars {

namespace {

using util::Sexpr;

[[noreturn]] void fail(const Sexpr& at, const std::string& msg) {
  throw GrammarIoError(msg, at.line, at.col);
}

/// 0-based byte offset of 1-based (line, col) in `text` (kNoOffset when
/// the position does not exist in the text).
std::size_t offset_of(std::string_view text, int line, int col) {
  if (line <= 0 || col <= 0) return GrammarIoError::kNoOffset;
  std::size_t pos = 0;
  for (int l = 1; l < line; ++l) {
    pos = text.find('\n', pos);
    if (pos == std::string_view::npos) return GrammarIoError::kNoOffset;
    ++pos;
  }
  const std::size_t offset = pos + static_cast<std::size_t>(col - 1);
  return offset <= text.size() ? offset : GrammarIoError::kNoOffset;
}

const std::string& atom_of(const Sexpr& s, const char* what) {
  if (!s.is_atom()) fail(s, std::string("expected ") + what);
  return s.atom;
}

void load_grammar_form(cdg::Grammar& g, const Sexpr& form) {
  if (form.size() < 1) fail(form, "empty grammar clause");
  for (std::size_t ci = 1; ci < form.size(); ++ci) {
    const Sexpr& clause = form[ci];
    if (!clause.is_list() || clause.items.empty() || !clause[0].is_atom())
      fail(clause, "expected a grammar clause");
    const std::string& head = clause[0].atom;
    if (head == "categories") {
      for (std::size_t i = 1; i < clause.size(); ++i)
        g.add_category(atom_of(clause[i], "category name"));
    } else if (head == "labels") {
      for (std::size_t i = 1; i < clause.size(); ++i)
        g.add_label(atom_of(clause[i], "label name"));
    } else if (head == "roles") {
      for (std::size_t i = 1; i < clause.size(); ++i)
        g.add_role(atom_of(clause[i], "role name"));
    } else if (head == "table") {
      for (std::size_t i = 1; i < clause.size(); ++i) {
        const Sexpr& row = clause[i];
        if (!row.is_list() || row.size() < 2)
          fail(row, "table row needs (role label...)");
        auto role = g.roles().find(atom_of(row[0], "role name"));
        if (!role) fail(row[0], "unknown role in table");
        for (std::size_t j = 1; j < row.size(); ++j) {
          auto lab = g.labels().find(atom_of(row[j], "label name"));
          if (!lab) fail(row[j], "unknown label in table");
          g.allow_label(*role, *lab);
        }
      }
    } else if (head == "table-for-category") {
      for (std::size_t i = 1; i < clause.size(); ++i) {
        const Sexpr& row = clause[i];
        if (!row.is_list() || row.size() < 3)
          fail(row, "refined row needs (role category label...)");
        auto role = g.roles().find(atom_of(row[0], "role name"));
        if (!role) fail(row[0], "unknown role in refined table");
        auto cat = g.categories().find(atom_of(row[1], "category name"));
        if (!cat) fail(row[1], "unknown category in refined table");
        for (std::size_t j = 2; j < row.size(); ++j) {
          auto lab = g.labels().find(atom_of(row[j], "label name"));
          if (!lab) fail(row[j], "unknown label in refined table");
          g.allow_label_for_category(*role, *cat, *lab);
        }
      }
    } else if (head == "constraint") {
      if (clause.size() != 3 || !clause[1].is_atom())
        fail(clause, "expected (constraint name (if ...))");
      try {
        cdg::Constraint c = cdg::parse_constraint(g, clause[2]);
        c.name = clause[1].atom;
        g.add_constraint(std::move(c));
      } catch (const cdg::ConstraintParseError& e) {
        fail(clause, std::string("bad constraint: ") + e.what());
      }
    } else {
      fail(clause, "unknown grammar clause `" + head + "`");
    }
  }
}

void load_lexicon_form(cdg::Grammar& g, cdg::Lexicon& lex,
                       const Sexpr& form) {
  for (std::size_t i = 1; i < form.size(); ++i) {
    const Sexpr& entry = form[i];
    if (!entry.is_list() || entry.size() < 2)
      fail(entry, "lexicon entry needs (word category...)");
    std::vector<cdg::CatId> cats;
    for (std::size_t j = 1; j < entry.size(); ++j) {
      auto cat = g.categories().find(atom_of(entry[j], "category name"));
      if (!cat) fail(entry[j], "unknown category in lexicon");
      cats.push_back(*cat);
    }
    lex.add(atom_of(entry[0], "word"), std::move(cats));
  }
}

}  // namespace

CdgBundle load_cdg_bundle(std::string_view text) {
  try {
    std::vector<Sexpr> forms;
    try {
      forms = util::parse_sexprs(text);
    } catch (const util::SexprError& e) {
      // SexprError::what() already reads "<msg> at <line>:<col>";
      // carry the structured position over instead of discarding it.
      GrammarIoError io(e.what());
      io.line = e.line;
      io.col = e.col;
      throw io;
    }
    CdgBundle bundle;
    bool saw_grammar = false;
    for (const Sexpr& form : forms) {
      if (!form.is_list() || form.items.empty() || !form[0].is_atom())
        fail(form, "expected (grammar ...) or (lexicon ...)");
      if (form[0].is("grammar")) {
        load_grammar_form(bundle.grammar, form);
        saw_grammar = true;
      } else if (form[0].is("lexicon")) {
        if (!saw_grammar)
          fail(form, "(lexicon ...) must follow (grammar ...)");
        load_lexicon_form(bundle.grammar, bundle.lexicon, form);
      } else {
        fail(form, "unknown top-level form `" + form[0].atom + "`");
      }
    }
    if (!saw_grammar) throw GrammarIoError("no (grammar ...) form found");
    return bundle;
  } catch (GrammarIoError& e) {
    // Only here is the source text in scope: resolve line/col to the
    // byte offset before the error leaves the loader.
    if (e.byte_offset == GrammarIoError::kNoOffset)
      e.byte_offset = offset_of(text, e.line, e.col);
    throw;
  }
}

CdgBundle load_cdg_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw GrammarIoError("cannot open grammar file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    return load_cdg_bundle(ss.str());
  } catch (const GrammarIoError& e) {
    GrammarIoError io(path + ": " + e.what());
    io.line = e.line;
    io.col = e.col;
    io.byte_offset = e.byte_offset;
    throw io;
  }
}

std::string save_cdg_bundle(const CdgBundle& bundle) {
  const cdg::Grammar& g = bundle.grammar;
  std::ostringstream os;
  os << "(grammar\n  (categories";
  for (const auto& name : g.categories().names()) os << ' ' << name;
  os << ")\n  (labels";
  for (const auto& name : g.labels().names()) os << ' ' << name;
  os << ")\n  (roles";
  for (const auto& name : g.roles().names()) os << ' ' << name;
  os << ")\n  (table";
  for (cdg::RoleId r = 0; r < g.num_roles(); ++r) {
    os << "\n    (" << g.role_name(r);
    for (cdg::LabelId l : g.labels_for_role(r)) os << ' ' << g.label_name(l);
    os << ')';
  }
  os << ")\n";
  // Category refinements: emit rows only where some category's allowed
  // label set is narrower than the coarse table.
  std::string refined;
  for (cdg::RoleId r = 0; r < g.num_roles(); ++r) {
    for (cdg::CatId c = 0; c < g.num_categories(); ++c) {
      std::string labs;
      bool narrower = false;
      for (cdg::LabelId l : g.labels_for_role(r)) {
        if (g.label_allowed(r, c, l))
          labs += ' ' + g.label_name(l);
        else
          narrower = true;
      }
      if (narrower && !labs.empty())
        refined += "\n    (" + g.role_name(r) + ' ' + g.category_name(c) +
                   labs + ')';
    }
  }
  if (!refined.empty()) os << "  (table-for-category" << refined << ")\n";
  int unnamed = 0;
  auto emit_constraint = [&](const cdg::Constraint& c) {
    std::string name =
        c.name.empty() ? "constraint-" + std::to_string(++unnamed) : c.name;
    os << "  (constraint " << name << "\n    "
       << c.root.to_string_with(g) << ")\n";
  };
  for (const auto& c : g.unary_constraints()) emit_constraint(c);
  for (const auto& c : g.binary_constraints()) emit_constraint(c);
  os << ")\n";
  // Lexicon, sorted for deterministic output.
  os << "(lexicon\n";
  for (const auto& word : bundle.lexicon.words()) {
    os << "  (" << word;
    for (cdg::CatId c : bundle.lexicon.categories(word))
      os << ' ' << g.category_name(c);
    os << ")\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace parsec::grammars
