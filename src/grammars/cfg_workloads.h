// Sample CFGs and workload strings for the Figure-8 CFG column.
#pragma once

#include <optional>
#include <vector>

#include "cfg/cfg.h"
#include "util/rng.h"

namespace parsec::grammars {

/// Balanced parentheses: S -> S S | ( S ) | ( ).
cfg::Grammar make_paren_grammar();

/// Arithmetic expressions: E -> E + T | T; T -> T * F | F;
/// F -> ( E ) | id.  Left-recursive: a stress case for the parallel
/// fixpoint CYK (rounds degrade toward O(n)).
cfg::Grammar make_expr_grammar();

/// Even/odd palindromes over {a, b}.
cfg::Grammar make_palindrome_grammar();

/// A small English-like CFG covering roughly the same sentences as the
/// CDG English grammar (for like-for-like Figure-8 rows).
cfg::Grammar make_english_cfg();

/// Samples a string of L(g) with length <= max_len by randomized
/// leftmost derivation (biased to short expansions); nullopt if the
/// sampler fails to terminate within its budget.
std::optional<std::vector<int>> sample_string(const cfg::Grammar& g,
                                              util::Rng& rng,
                                              std::size_t max_len);

/// Samples a string of length exactly `len` (retries internally);
/// nullopt if none found within the retry budget.
std::optional<std::vector<int>> sample_string_of_length(
    const cfg::Grammar& g, util::Rng& rng, std::size_t len,
    int retries = 200);

}  // namespace parsec::grammars
