// A CDG grammar for the non-context-free language a^n b^n c^n.
//
// The paper (§1.5) stresses that CDG's expressivity is strictly greater
// than CFGs' ("CDG can accept languages that CFGs cannot").  This
// grammar demonstrates it with the textbook non-CF language:
//
//   * every `a` points (governor GA) at a distinct `b` to its right,
//     order-preserving;  every `b` needs (NA) exactly that `a` back;
//   * every `b` points (GB) at a distinct `c`; every `c` needs (NB)
//     that `b` back;
//   * category-order constraints force all a's before all b's before
//     all c's.
// Mutual pointers + uniqueness make the matchings bijections, so the
// counts must agree: the accepted language is exactly {a^n b^n c^n}.
#pragma once

#include "grammars/toy_grammar.h"

namespace parsec::grammars {

CdgBundle make_anbncn_grammar();

/// "a a b b c c" for n = 2, etc.
std::string anbncn_string(int n);

}  // namespace parsec::grammars
