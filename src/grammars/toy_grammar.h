// The paper's worked-example grammar (§1.1-1.4).
//
// Accepts "The program runs": categories {det, noun, verb}, labels
// {SUBJ, NP, ROOT, S, DET, BLANK}, roles {governor, needs}, the table T
// of §1.1, and the six unary + four binary constraints of §1.3, added in
// the paper's order (the golden-figure tests depend on that order).
#pragma once

#include <string>
#include <vector>

#include "cdg/grammar.h"
#include "cdg/lexicon.h"

namespace parsec::grammars {

struct CdgBundle {
  cdg::Grammar grammar;
  cdg::Lexicon lexicon;

  /// Tags a whitespace-separated sentence with preferred categories.
  cdg::Sentence tag(const std::string& text) const;
};

/// Splits on spaces (no punctuation handling; inputs are pre-tokenized).
std::vector<std::string> split_words(const std::string& text);

/// Builds the paper's toy grammar + a small lexicon around it.
CdgBundle make_toy_grammar();

}  // namespace parsec::grammars
