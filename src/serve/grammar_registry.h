// Multi-tenant grammar registry with epoch-versioned hot reload.
//
// A GrammarBundle is one immutable, precompiled snapshot of a tenant's
// grammar: the grammar + lexicon, the factored constraint sets (one
// EngineSet, compiled once at publish time), a monotonic epoch, and the
// tenant's admission quota.  The registry maps tenant names to the
// current snapshot; `publish` (or `load_file`, which parses a .cdg
// file) validates by compiling the engines first and only then swaps
// the map entry, so a broken reload leaves the old snapshot serving.
//
// Epoch protocol (documented in docs/OBSERVABILITY.md):
//   - every publish of a name bumps that entry's epoch by one;
//   - the tenant id is stable across reloads of the same name;
//   - requests pin the snapshot (a shared_ptr) at submit time, so a
//     reload mid-batch never swaps a grammar under an in-flight parse —
//     the old epoch stays alive until its last request drains;
//   - the serve layer's result cache keys on (tenant, epoch, sentence
//     hash), so entries cached under a retired epoch can never be
//     served to requests admitted under the new one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "grammars/toy_grammar.h"
#include "parsec/backend.h"

namespace parsec::serve {

/// One immutable grammar snapshot.  Construction compiles every engine
/// (the validation step of a reload); afterwards the bundle is
/// read-only and safe to share across any number of worker threads.
class GrammarBundle {
 public:
  /// Owning snapshot: the registry keeps the CdgBundle alive via
  /// shared_ptr so the compiled engines' grammar reference stays valid
  /// for as long as any request holds the snapshot.
  GrammarBundle(std::string name, int tenant_id, std::uint64_t epoch,
                std::shared_ptr<const grammars::CdgBundle> owned,
                engine::EngineSetOptions eopt, std::size_t max_inflight);

  /// Borrowed snapshot (compat path for callers that own their grammar
  /// statically, e.g. ParseService's single-grammar constructors).  The
  /// caller guarantees `grammar` (and `lexicon`, if non-null) outlive
  /// the registry entry.
  GrammarBundle(std::string name, int tenant_id, std::uint64_t epoch,
                const cdg::Grammar* grammar, const cdg::Lexicon* lexicon,
                engine::EngineSetOptions eopt, std::size_t max_inflight);

  GrammarBundle(const GrammarBundle&) = delete;
  GrammarBundle& operator=(const GrammarBundle&) = delete;

  const std::string& name() const { return name_; }
  /// Small dense id, stable across reloads of the same name (span args
  /// are numeric, so traces carry this instead of the name).
  int tenant_id() const { return tenant_id_; }
  std::uint64_t epoch() const { return epoch_; }
  const cdg::Grammar& grammar() const { return *grammar_; }
  /// May be null on the borrowed path when the caller tags externally.
  const cdg::Lexicon* lexicon() const { return lexicon_; }
  const engine::EngineSet& engines() const { return engines_; }
  /// Admission quota: max concurrently admitted requests for this
  /// tenant (0 = unlimited).  Enforced by ParseService as Overloaded.
  std::size_t max_inflight() const { return max_inflight_; }

 private:
  std::string name_;
  int tenant_id_;
  std::uint64_t epoch_;
  std::shared_ptr<const grammars::CdgBundle> owned_;
  const cdg::Grammar* grammar_;
  const cdg::Lexicon* lexicon_;
  engine::EngineSet engines_;
  std::size_t max_inflight_;
};

using GrammarSnapshot = std::shared_ptr<const GrammarBundle>;

/// Per-publish knobs (namespace scope so it can serve as a default
/// argument inside GrammarRegistry).
struct GrammarPublishOptions {
  engine::EngineSetOptions engines;
  /// Per-tenant admission quota (0 = unlimited).
  std::size_t max_inflight = 0;
};

class GrammarRegistry {
 public:
  using PublishOptions = GrammarPublishOptions;

  /// Publishes `bundle` as the new snapshot for `name` (epoch =
  /// previous epoch + 1, or 1 for a new name).  Compiles the engines
  /// before swapping; throws (and leaves the old snapshot serving) if
  /// compilation fails.  Returns the published snapshot.
  GrammarSnapshot publish(const std::string& name, grammars::CdgBundle bundle,
                          PublishOptions opt = PublishOptions());

  /// Publishes a snapshot that borrows `grammar`/`lexicon` from the
  /// caller (compat path; the caller guarantees their lifetime).
  GrammarSnapshot publish_borrowed(const std::string& name,
                                   const cdg::Grammar& grammar,
                                   const cdg::Lexicon* lexicon,
                                   PublishOptions opt = PublishOptions());

  /// Loads a .cdg file via grammar_io and publishes it.  Parse or
  /// validation errors throw grammars::GrammarIoError with source
  /// positions; the old snapshot (if any) keeps serving.
  GrammarSnapshot load_file(const std::string& name, const std::string& path,
                            PublishOptions opt = PublishOptions());

  /// Current snapshot for `name`, or nullptr if unknown.
  GrammarSnapshot snapshot(std::string_view name) const;

  /// Current epoch for `name` (0 if unknown).
  std::uint64_t epoch(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Registers a hook run after every successful publish (outside the
  /// registry's internal mutex, serialized with other publishes).  The
  /// result cache registers one to drop entries from retired epochs.
  void add_publish_hook(std::function<void(const GrammarBundle&)> hook);

 private:
  GrammarSnapshot publish_snapshot(const std::string& name,
                                   std::shared_ptr<const grammars::CdgBundle> owned,
                                   const cdg::Grammar* grammar,
                                   const cdg::Lexicon* lexicon,
                                   PublishOptions opt);

  /// Serializes publishers: epoch reads + engine compilation + swap are
  /// atomic with respect to other publishes, while `state_mutex_` keeps
  /// reader critical sections (snapshot lookups) pointer-swap short.
  std::mutex publish_mutex_;
  mutable std::mutex state_mutex_;
  std::unordered_map<std::string, GrammarSnapshot> entries_;
  int next_tenant_id_ = 1;
  std::vector<std::function<void(const GrammarBundle&)>> hooks_;
};

}  // namespace parsec::serve
