#include "serve/thread_pool.h"

#include <chrono>

namespace parsec::serve {

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : queue_(queue_capacity) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? static_cast<int>(hw) : 1;
  }
  counters_ = std::make_unique<Counters[]>(static_cast<std::size_t>(threads));
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::post(Job job) { return queue_.push(std::move(job)); }

bool ThreadPool::try_post(Job job) { return queue_.try_push(std::move(job)); }

void ThreadPool::shutdown() {
  queue_.close();
  std::lock_guard lock(join_mutex_);
  if (joined_.exchange(true)) return;
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    out[i].jobs = counters_[i].jobs.load(std::memory_order_relaxed);
    out[i].busy_seconds =
        counters_[i].busy_seconds.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::worker_loop(int index) {
  Counters& c = counters_[static_cast<std::size_t>(index)];
  while (auto job = queue_.pop()) {
    // Count on pickup, not completion: a job may publish its own result
    // (e.g. satisfy a promise) before returning, and observers of that
    // result must not see a job total that excludes it.
    c.jobs.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    (*job)(index);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    c.busy_seconds.fetch_add(secs, std::memory_order_relaxed);
  }
}

}  // namespace parsec::serve
