#include "serve/result_cache.h"

#include <utility>

namespace parsec::serve {

ResultCache::Ticket& ResultCache::Ticket::operator=(Ticket&& o) noexcept {
  if (this != &o) {
    abandon();
    cache_ = o.cache_;
    key_ = o.key_;
    o.cache_ = nullptr;
  }
  return *this;
}

void ResultCache::Ticket::fill(Payload p) {
  if (!cache_) return;
  ResultCache* cache = cache_;
  cache_ = nullptr;
  std::unique_lock lock(cache->mutex_);
  cache->fill_locked(key_, std::move(p), lock);
}

void ResultCache::Ticket::abandon() {
  if (!cache_) return;
  ResultCache* cache = cache_;
  cache_ = nullptr;
  cache->abandon_slot(key_);
}

ResultCache::ResultCache(std::size_t capacity, obs::Registry* metrics)
    : capacity_(capacity) {
  if (!metrics) return;
  m_lookups_ = &metrics->counter("parsec_serve_cache_lookups_total",
                                 "Cache transactions (one per cache-enabled "
                                 "request reaching the cache)");
  m_hits_ = &metrics->counter("parsec_serve_cache_hits_total",
                              "Requests served from a ready cache entry");
  m_misses_ = &metrics->counter(
      "parsec_serve_cache_misses_total",
      "Requests that parsed (single-flight leaders and domain-upgrade "
      "bypasses)");
  m_coalesced_ = &metrics->counter(
      "parsec_serve_cache_coalesced_total",
      "Duplicate requests that waited on an in-flight leader's parse");
  m_evictions_ = &metrics->counter("parsec_serve_cache_evictions_total",
                                   "Ready entries dropped by LRU eviction");
  m_invalidated_ = &metrics->counter(
      "parsec_serve_cache_invalidated_total",
      "Ready entries dropped because their grammar epoch was retired");
  m_hit_age_ = &metrics->histogram(
      "parsec_serve_cache_hit_age_seconds",
      "Age of the cache entry at hit time",
      {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0});
}

ResultCache::LookupResult ResultCache::acquire(
    const Key& key, bool need_domains,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mutex_);
  stats_.lookups++;
  if (m_lookups_) m_lookups_->inc();
  bool waited = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // No entry and no leader: this caller parses.  (A waiter lands
      // here when the leader abandoned — it becomes the new leader.)
      entries_.emplace(key, Slot{});
      stats_.misses++;
      if (m_misses_) m_misses_->inc();
      LookupResult r;
      r.outcome = Outcome::MissLeader;
      r.ticket = Ticket(this, key);
      return r;
    }
    Slot& slot = it->second;
    if (slot.state == Slot::State::Ready) {
      if (need_domains && !slot.payload->has_domains) {
        // Entry lacks the domains this request asked for: parse fresh
        // and upgrade via put().  Counted as a miss (it costs a parse).
        stats_.misses++;
        if (m_misses_) m_misses_->inc();
        LookupResult r;
        r.outcome = Outcome::Bypass;
        return r;
      }
      lru_.splice(lru_.end(), lru_, slot.lru_pos);
      if (waited) {
        stats_.coalesced++;
        if (m_coalesced_) m_coalesced_->inc();
      } else {
        stats_.hits++;
        if (m_hits_) m_hits_->inc();
        if (m_hit_age_) {
          const auto age = std::chrono::steady_clock::now() - slot.inserted;
          m_hit_age_->observe(std::chrono::duration<double>(age).count());
        }
      }
      LookupResult r;
      r.outcome = waited ? Outcome::Coalesced : Outcome::Hit;
      r.payload = slot.payload;
      return r;
    }
    // In-flight leader: coalesce.
    waited = true;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look — the leader may have filled right at the
      // deadline — then give up; the service maps this to Timeout.
      auto again = entries_.find(key);
      if (again != entries_.end() &&
          again->second.state == Slot::State::Ready &&
          !(need_domains && !again->second.payload->has_domains)) {
        lru_.splice(lru_.end(), lru_, again->second.lru_pos);
        stats_.coalesced++;
        if (m_coalesced_) m_coalesced_->inc();
        LookupResult r;
        r.outcome = Outcome::Coalesced;
        r.payload = again->second.payload;
        return r;
      }
      LookupResult r;
      r.outcome = Outcome::WaitExpired;
      return r;
    }
  }
}

void ResultCache::put(const Key& key, Payload p) {
  std::unique_lock lock(mutex_);
  fill_locked(key, std::move(p), lock);
}

void ResultCache::fill_locked(const Key& key, Payload p,
                              std::unique_lock<std::mutex>& lock) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    it = entries_.emplace(key, Slot{}).first;
  Slot& slot = it->second;
  if (slot.state == Slot::State::Ready) {
    // Overwrite (Bypass upgrade): position in the LRU is refreshed.
    lru_.splice(lru_.end(), lru_, slot.lru_pos);
  } else {
    slot.state = Slot::State::Ready;
    slot.lru_pos = lru_.insert(lru_.end(), key);
    ready_count_++;
  }
  slot.payload = std::make_shared<const Payload>(std::move(p));
  slot.inserted = std::chrono::steady_clock::now();
  evict_excess_locked();
  lock.unlock();
  cv_.notify_all();
}

void ResultCache::abandon_slot(const Key& key) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.state == Slot::State::Pending)
      entries_.erase(it);
  }
  cv_.notify_all();
}

void ResultCache::evict_excess_locked() {
  while (ready_count_ > capacity_ && !lru_.empty()) {
    const Key victim = lru_.front();
    lru_.pop_front();
    entries_.erase(victim);
    ready_count_--;
    stats_.evictions++;
    if (m_evictions_) m_evictions_->inc();
  }
}

void ResultCache::invalidate_tenant(int tenant, std::uint64_t before_epoch) {
  std::lock_guard lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool retired = it->second.state == Slot::State::Ready &&
                         it->first.tenant == tenant &&
                         it->first.epoch < before_epoch;
    if (retired) {
      lru_.erase(it->second.lru_pos);
      ready_count_--;
      stats_.invalidated++;
      if (m_invalidated_) m_invalidated_->inc();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return ready_count_;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace parsec::serve
