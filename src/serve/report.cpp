#include "serve/report.h"

#include <ostream>
#include <sstream>

namespace parsec::serve {

namespace {

void json_backend(std::ostream& os, const engine::BackendStats& b) {
  os << "{\"requests\": " << b.requests << ", \"accepted\": " << b.accepted
     << ", \"cancelled\": " << b.cancelled
     << ", \"consistency_iterations\": " << b.consistency_iterations
     << ", \"unary_evals\": " << b.network.unary_evals
     << ", \"binary_evals\": " << b.network.binary_evals
     << ", \"masked_binary_pairs\": " << b.network.masked_binary_pairs
     << ", \"masked_unary_decided\": " << b.network.masked_unary_decided
     << ", \"mask_build_evals\": " << b.network.mask_build_evals
     << ", \"effective_unary_evals\": " << b.network.effective_unary_evals()
     << ", \"effective_binary_evals\": " << b.network.effective_binary_evals()
     << ", \"tile_sweeps\": " << b.network.tile_sweeps
     << ", \"simd_lane_words\": " << b.network.simd_lane_words
     << ", \"eliminations\": " << b.network.eliminations
     << ", \"arc_zeroings\": " << b.network.arc_zeroings
     << ", \"support_checks\": " << b.network.support_checks
     << ", \"pram_time_steps\": " << b.pram.time_steps
     << ", \"pram_max_processors\": " << b.pram.max_processors
     << ", \"maspar_scan_ops\": " << b.maspar.scan_ops
     << ", \"maspar_route_ops\": " << b.maspar.route_ops
     << ", \"maspar_simulated_seconds\": " << b.maspar_simulated_seconds
     << ", \"topo_time_steps\": " << b.topo_time_steps
     << ", \"topo_reduction_steps\": " << b.topo_reduction_steps
     << "}";
}

}  // namespace

void write_throughput_report(std::ostream& os, const std::string& workload,
                             const std::vector<ThroughputRow>& rows,
                             const ThroughputBaseline* baseline,
                             const DupSweepResult* dup,
                             const BatchSweepResult* soa) {
  os << "{\n  \"workload\": \"" << workload << "\",\n";
  if (baseline) {
    os << "  \"baseline\": {\"captured\": \"" << baseline->captured
       << "\", \"commit\": \"" << baseline->commit
       << "\", \"single_thread_sps\": " << baseline->single_thread_sps
       << "},\n";
  }
  if (dup) {
    os << "  \"dup_sweep\": {\"requests\": " << dup->requests
       << ", \"unique_sentences\": " << dup->unique_sentences
       << ", \"threads\": " << dup->threads << ", \"backend\": \""
       << dup->backend << "\", \"wall_off_seconds\": " << dup->wall_off_seconds
       << ", \"wall_on_seconds\": " << dup->wall_on_seconds
       << ", \"sps_off\": " << dup->sps_off << ", \"sps_on\": " << dup->sps_on
       << ", \"speedup\": " << dup->speedup
       << ", \"hit_rate\": " << dup->hit_rate
       << ", \"cache\": {\"lookups\": " << dup->cache.lookups
       << ", \"hits\": " << dup->cache.hits
       << ", \"misses\": " << dup->cache.misses
       << ", \"coalesced\": " << dup->cache.coalesced
       << ", \"evictions\": " << dup->cache.evictions
       << ", \"invalidated\": " << dup->cache.invalidated << "}},\n";
  }
  if (soa) {
    os << "  \"batch_sweep\": {\"requests\": " << soa->requests
       << ", \"threads\": " << soa->threads
       << ", \"wall_off_seconds\": " << soa->wall_off_seconds
       << ", \"wall_on_seconds\": " << soa->wall_on_seconds
       << ", \"sps_off\": " << soa->sps_off << ", \"sps_on\": " << soa->sps_on
       << ", \"speedup\": " << soa->speedup
       << ", \"batches\": " << soa->batches
       << ", \"batched_requests\": " << soa->batched_requests
       << ", \"occupancy\": " << soa->occupancy << "},\n";
  }
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    const ServiceStats& s = r.stats;
    os << "    {\"threads\": " << r.threads
       << ", \"batch_size\": " << r.batch_size << ", \"backend\": \""
       << r.backend << "\", \"sentences\": " << r.sentences
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"throughput_sps\": " << r.throughput_sps
       << ", \"speedup\": " << r.speedup << ", \"efficiency\": " << r.efficiency;
    if (baseline && r.threads == 1 && baseline->single_thread_sps > 0)
      os << ", \"vs_baseline\": "
         << r.throughput_sps / baseline->single_thread_sps;
    os << ", \"latency_ms\": {\"mean\": " << s.latency_mean_ms
       << ", \"p50\": " << s.latency_p50_ms << ", \"p95\": " << s.latency_p95_ms
       << ", \"p99\": " << s.latency_p99_ms << ", \"max\": " << s.latency_max_ms
       << "}, \"completed\": " << s.completed << ", \"timeouts\": "
       << s.timeouts << ", \"batches\": " << s.batches
       << ", \"batched_requests\": " << s.batched_requests
       << ", \"batch_occupancy\": "
       << (s.batches ? static_cast<double>(s.batched_requests) /
                           (static_cast<double>(s.batches) *
                            static_cast<double>(cdg::BatchParser::kLanes))
                     : 0.0)
       << ", \"backend_stats\": ";
    json_backend(os, s.backends[static_cast<std::size_t>(
                     *engine::backend_from_name(r.backend))]);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string render_service_stats(const ServiceStats& s) {
  std::ostringstream os;
  os << "requests: " << s.completed << "/" << s.submitted << " completed, "
     << s.accepted << " accepted, " << s.timeouts << " timeouts";
  if (s.rejected_at_submit) os << ", " << s.rejected_at_submit << " rejected";
  os << "\nthroughput: " << s.throughput_sps << " sentences/s over "
     << s.elapsed_seconds << " s on " << s.threads << " threads\n"
     << "latency ms: mean " << s.latency_mean_ms << ", p50 "
     << s.latency_p50_ms << ", p95 " << s.latency_p95_ms << ", p99 "
     << s.latency_p99_ms << ", max " << s.latency_max_ms << "\n"
     << "queue depth: " << s.queue_depth << "\n";
  if (s.cache.lookups)
    os << "cache: " << s.cache.hits << " hits, " << s.cache.misses
       << " misses, " << s.cache.coalesced << " coalesced, "
       << s.cache.evictions << " evicted, " << s.cache.invalidated
       << " invalidated\n";
  if (s.batches)
    os << "batching: " << s.batched_requests << " requests in " << s.batches
       << " lane batches (occupancy "
       << static_cast<double>(s.batched_requests) /
              (static_cast<double>(s.batches) *
               static_cast<double>(cdg::BatchParser::kLanes))
       << ")\n";
  for (std::size_t i = 0; i < s.workers.size(); ++i)
    os << "worker " << i << ": " << s.workers[i].jobs << " jobs, "
       << s.workers[i].busy_seconds << " s busy\n";
  for (engine::Backend b : engine::kAllBackends) {
    const auto& bs = s.backends[static_cast<std::size_t>(b)];
    if (!bs.requests) continue;
    os << "backend " << engine::to_string(b) << ": " << bs.requests
       << " requests, " << bs.consistency_iterations
       << " consistency iterations, " << bs.network.eliminations
       << " eliminations";
    if (bs.maspar_simulated_seconds > 0)
      os << ", " << bs.maspar_simulated_seconds << " simulated s";
    os << "\n";
  }
  return os.str();
}

}  // namespace parsec::serve
