#include "serve/grammar_registry.h"

#include <utility>

#include "grammars/grammar_io.h"

namespace parsec::serve {

GrammarBundle::GrammarBundle(std::string name, int tenant_id,
                             std::uint64_t epoch,
                             std::shared_ptr<const grammars::CdgBundle> owned,
                             engine::EngineSetOptions eopt,
                             std::size_t max_inflight)
    : name_(std::move(name)),
      tenant_id_(tenant_id),
      epoch_(epoch),
      owned_(std::move(owned)),
      grammar_(&owned_->grammar),
      lexicon_(&owned_->lexicon),
      engines_(*grammar_, eopt),
      max_inflight_(max_inflight) {}

GrammarBundle::GrammarBundle(std::string name, int tenant_id,
                             std::uint64_t epoch, const cdg::Grammar* grammar,
                             const cdg::Lexicon* lexicon,
                             engine::EngineSetOptions eopt,
                             std::size_t max_inflight)
    : name_(std::move(name)),
      tenant_id_(tenant_id),
      epoch_(epoch),
      grammar_(grammar),
      lexicon_(lexicon),
      engines_(*grammar_, eopt),
      max_inflight_(max_inflight) {}

GrammarSnapshot GrammarRegistry::publish(const std::string& name,
                                         grammars::CdgBundle bundle,
                                         PublishOptions opt) {
  auto owned =
      std::make_shared<const grammars::CdgBundle>(std::move(bundle));
  return publish_snapshot(name, std::move(owned), nullptr, nullptr,
                          std::move(opt));
}

GrammarSnapshot GrammarRegistry::publish_borrowed(const std::string& name,
                                                  const cdg::Grammar& grammar,
                                                  const cdg::Lexicon* lexicon,
                                                  PublishOptions opt) {
  return publish_snapshot(name, nullptr, &grammar, lexicon, std::move(opt));
}

GrammarSnapshot GrammarRegistry::load_file(const std::string& name,
                                           const std::string& path,
                                           PublishOptions opt) {
  // Parse (and thereby validate the file) before touching any registry
  // state: a malformed file throws GrammarIoError here and the current
  // snapshot keeps serving.
  return publish(name, grammars::load_cdg_bundle_file(path), std::move(opt));
}

GrammarSnapshot GrammarRegistry::publish_snapshot(
    const std::string& name, std::shared_ptr<const grammars::CdgBundle> owned,
    const cdg::Grammar* grammar, const cdg::Lexicon* lexicon,
    PublishOptions opt) {
  std::lock_guard publish_lock(publish_mutex_);

  // Epoch and tenant id carry over from the entry being replaced.
  std::uint64_t epoch = 1;
  int tenant_id = 0;
  {
    std::lock_guard state_lock(state_mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      epoch = it->second->epoch() + 1;
      tenant_id = it->second->tenant_id();
    } else {
      tenant_id = next_tenant_id_++;
    }
  }

  // Compile outside state_mutex_ (this is the expensive validation
  // step); a compile failure throws and nothing was swapped.
  GrammarSnapshot fresh =
      owned ? std::make_shared<const GrammarBundle>(
                  name, tenant_id, epoch, std::move(owned), opt.engines,
                  opt.max_inflight)
            : std::make_shared<const GrammarBundle>(name, tenant_id, epoch,
                                                    grammar, lexicon,
                                                    opt.engines,
                                                    opt.max_inflight);

  {
    std::lock_guard state_lock(state_mutex_);
    entries_[name] = fresh;
  }
  // Hooks run outside state_mutex_ so a hook may call back into the
  // registry; publish_mutex_ keeps them ordered with the swap.
  for (const auto& hook : hooks_) hook(*fresh);
  return fresh;
}

GrammarSnapshot GrammarRegistry::snapshot(std::string_view name) const {
  std::lock_guard lock(state_mutex_);
  auto it = entries_.find(std::string(name));
  return it == entries_.end() ? nullptr : it->second;
}

std::uint64_t GrammarRegistry::epoch(std::string_view name) const {
  auto snap = snapshot(name);
  return snap ? snap->epoch() : 0;
}

std::vector<std::string> GrammarRegistry::names() const {
  std::lock_guard lock(state_mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, snap] : entries_) out.push_back(name);
  return out;
}

std::size_t GrammarRegistry::size() const {
  std::lock_guard lock(state_mutex_);
  return entries_.size();
}

void GrammarRegistry::add_publish_hook(
    std::function<void(const GrammarBundle&)> hook) {
  std::lock_guard lock(publish_mutex_);
  hooks_.push_back(std::move(hook));
}

}  // namespace parsec::serve
