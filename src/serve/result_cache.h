// Parse-result cache with single-flight in-flight coalescing.
//
// Keyed by (tenant id, grammar epoch, sentence hash): two requests with
// the same key parse the same tagged sentence under the same immutable
// grammar snapshot, and every engine reaches the same fixpoint
// (bit-determinism), so a cached response is byte-identical to a fresh
// parse — including across backends.  The epoch in the key makes
// invalidation structural: requests admitted after a hot reload carry
// the new epoch and can never match entries cached under the old one
// (`invalidate_tenant` additionally frees the retired entries).
//
// Single flight: the first request for an uncached key becomes the
// *leader* (Outcome::MissLeader) and holds a Ticket; concurrent
// duplicates (Outcome::Coalesced) block on the one live parse instead
// of re-parsing.  A leader that fails (fault, cancel, shed) abandons
// its ticket, which wakes the waiters — one of them becomes the new
// leader, the rest re-coalesce — so a crash never wedges a key.
// Waiters honour their request deadline (Outcome::WaitExpired maps to
// the service's Timeout status).
//
// Capacity is bounded; completed entries are evicted LRU.  Only Ok
// responses are cached — timeouts, faults and sheds are not outcomes
// of the (grammar, sentence) function, just of that execution.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "parsec/backend.h"
#include "util/bitset.h"

namespace parsec::serve {

class ResultCache {
 public:
  struct Key {
    int tenant = 0;
    std::uint64_t epoch = 0;
    std::uint64_t sentence_hash = 0;
    bool operator==(const Key&) const = default;
  };

  /// The memoized slice of a ParseResponse: exactly the fields that are
  /// a pure function of (grammar snapshot, tagged sentence).
  struct Payload {
    bool accepted = false;
    std::size_t alive_role_values = 0;
    std::uint64_t domains_hash = 0;
    /// Domains are O(n^2) bits and only captured on request, so a
    /// payload may be cached without them; a later capture_domains
    /// request bypasses and upgrades the entry (see Outcome::Bypass).
    bool has_domains = false;
    std::vector<util::DynBitset> domains;
    /// Backend that ran the memoized parse (responses report it so
    /// operators can see which engine populated the entry).
    engine::Backend parsed_on = engine::Backend::Serial;
  };

  enum class Outcome {
    Hit,          // ready entry returned
    MissLeader,   // caller must parse and fill/abandon the ticket
    Coalesced,    // waited on the in-flight leader, got its payload
    WaitExpired,  // deadline passed while coalesced (service: Timeout)
    Bypass,       // entry exists but lacks domains the caller needs;
                  // parse fresh, then upgrade via put()
  };

  /// Leader's obligation.  Destroying an unfilled ticket abandons the
  /// slot (wakes waiters; one retries as the new leader).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : cache_(o.cache_), key_(o.key_) {
      o.cache_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { abandon(); }

    explicit operator bool() const { return cache_ != nullptr; }

    /// Publishes the payload and wakes coalesced waiters.
    void fill(Payload p);
    /// Releases the slot without a payload (failed parse); waiters wake
    /// and retry.
    void abandon();

   private:
    friend class ResultCache;
    Ticket(ResultCache* cache, Key key) : cache_(cache), key_(key) {}
    ResultCache* cache_ = nullptr;
    Key key_;
  };

  struct LookupResult {
    Outcome outcome = Outcome::MissLeader;
    /// Set on Hit and Coalesced.
    std::shared_ptr<const Payload> payload;
    /// Engaged on MissLeader only.
    Ticket ticket;
  };

  /// `capacity` bounds the number of *ready* entries (in-flight slots
  /// are bounded by the service's worker count).  `metrics` (optional)
  /// receives the parsec_serve_cache_* families.
  explicit ResultCache(std::size_t capacity,
                       obs::Registry* metrics = nullptr);

  /// One cache transaction.  `need_domains` forces Bypass on entries
  /// cached without domains.  `deadline` bounds coalesced waiting
  /// (time_point::max() = wait for the leader indefinitely).
  LookupResult acquire(
      const Key& key, bool need_domains,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  /// Inserts/overwrites a ready entry (the Bypass upgrade path).
  void put(const Key& key, Payload p);

  /// Drops every ready entry for `tenant` with epoch < `before_epoch`
  /// (registry publish hook).  In-flight slots are left alone: their
  /// leaders parse under the pinned old snapshot and their key's old
  /// epoch already makes them unreachable from new requests.
  void invalidate_tenant(int tenant, std::uint64_t before_epoch);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;
  };
  Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.sentence_hash;
      h ^= (static_cast<std::uint64_t>(k.tenant) + 0x9e3779b97f4a7c15ull +
            (h << 6) + (h >> 2));
      h ^= (k.epoch + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };

  struct Slot {
    enum class State { Pending, Ready };
    State state = State::Pending;
    std::shared_ptr<const Payload> payload;  // set when Ready
    std::chrono::steady_clock::time_point inserted{};
    /// Position in lru_ (valid when Ready).
    std::list<Key>::iterator lru_pos;
  };

  void fill_locked(const Key& key, Payload p,
                   std::unique_lock<std::mutex>& lock);
  void abandon_slot(const Key& key);
  void evict_excess_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<Key, Slot, KeyHash> entries_;
  /// Ready keys, least-recently-used first.
  std::list<Key> lru_;
  std::size_t ready_count_ = 0;
  Stats stats_;

  // Optional metric handles (resolved once; null when no registry).
  obs::Counter* m_lookups_ = nullptr;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_invalidated_ = nullptr;
  obs::Histogram* m_hit_age_ = nullptr;
};

}  // namespace parsec::serve
