// Bounded MPMC work queue for the parse service's thread pool.
//
// Condition-variable based: producers block while the queue is full,
// consumers block while it is empty.  close() initiates shutdown —
// further pushes fail, and consumers drain whatever is left before
// pop() starts returning nullopt.  The bound is the service's
// back-pressure mechanism: a flooded service slows its callers down
// instead of growing an unbounded backlog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace parsec::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue closes).  Returns false —
  /// and drops `v` — iff the queue was closed.
  bool push(T v) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T v) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Closes the queue: pending and future push() calls fail, consumers
  /// drain the remaining items, then pop() returns nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace parsec::serve
