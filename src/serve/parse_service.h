// Batched multi-sentence parse service.
//
// The paper parallelizes *within* one sentence (O(k + log n) steps on
// the MasPar); a parsing service also scales *across* sentences — the
// dimension real traffic arrives on.  ParseService drives a stream of
// independent parse requests through the existing engines on a
// fixed-size thread pool:
//
//   * multi-tenant grammars: requests name a grammar; a GrammarRegistry
//     resolves the name to an immutable precompiled snapshot *at
//     submit*, so a hot reload mid-batch never swaps a grammar under an
//     in-flight parse (the old epoch drains, new requests see the new
//     one) — see serve/grammar_registry.h;
//   * per-request backend selection (serial / omp / pram / maspar);
//   * optional parse-result cache keyed by (tenant, epoch, sentence
//     hash) with single-flight coalescing of duplicate in-flight
//     requests — bit-identical by the engines' determinism contract
//     (serve/result_cache.h);
//   * per-tenant admission quotas (GrammarBundle::max_inflight) mapped
//     onto the Overloaded status;
//   * per-worker reusable scratch (arena-backed constraint-network
//     pools via Network::reinit; the arena carries domains, arcs, AC-4
//     counters and elimination staging in one allocation) so
//     steady-state parsing of repeating sentence shapes is
//     allocation-free on the hot path;
//   * per-request deadlines — an expired request returns a Timeout
//     response instead of stalling the queue (every backend aborts
//     mid-parse via cdg::CancelFn at its engine checkpoints);
//   * graceful degradation (PR 5, docs/ROBUSTNESS.md): worker-boundary
//     exception containment (BadRequest/Faulted instead of process
//     death), optional load shedding (Overloaded instead of blocking),
//     retry-with-fallback onto the serial backend (bit-identity
//     preserved — every backend reaches the same fixpoint), a
//     per-backend circuit breaker, and a stuck-worker watchdog;
//   * batched submission returning futures (or invoking callbacks) in
//     input order, so batch results are trivially ordered;
//   * aggregate ServiceStats: throughput, p50/p95/p99 latency, queue
//     depth, per-worker utilization, and per-backend work counters
//     rolled up from NetworkCounters / StepStats / MachineStats.
//
// Every parse is single-threaded and deterministic, so batched results
// are bit-identical to a single-threaded run of the same requests
// (ParseResponse::domains_hash; tests/serve verifies byte equality) —
// and, by the same contract, to a cache hit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdg/batch.h"
#include "cdg/lexicon.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "resil/circuit_breaker.h"
#include "resil/watchdog.h"
#include "serve/grammar_registry.h"
#include "serve/result_cache.h"
#include "serve/thread_pool.h"
#include "util/stats.h"

namespace parsec::serve {

enum class RequestStatus {
  Ok,            // parsed (accepted or rejected — see `accepted`)
  Timeout,       // deadline expired at submit, while queued, or mid-parse
  ShuttingDown,  // submitted after shutdown began
  BadRequest,    // unparseable input (unknown word, empty sentence,
                 // unknown grammar name)
  Overloaded,    // shed: queue full under Options::shed_load, or the
                 // tenant's admission quota exhausted
  Faulted,       // engine fault (injected or genuine) not recovered by
                 // the serial fallback; see ParseResponse::error
};

/// Number of RequestStatus values (the serve metrics family has one
/// disjoint counter per status; every submitted request lands in
/// exactly one).
inline constexpr std::size_t kNumRequestStatuses = 6;

const char* to_string(RequestStatus s);

struct ParseRequest {
  cdg::Sentence sentence;
  /// Raw, untagged words: when non-empty, the worker tags them with the
  /// resolved grammar's lexicon (or Options::lexicon) and `sentence` is
  /// ignored.  Unknown words (or a missing lexicon) degrade to
  /// BadRequest instead of throwing out of a pool thread.
  std::vector<std::string> words;
  /// Grammar (tenant) name resolved against the registry at submit;
  /// empty uses Options::default_grammar.  Unknown names answer
  /// BadRequest inline.
  std::string grammar;
  engine::Backend backend = engine::Backend::Serial;
  /// Relative deadline measured from submission; zero = none.  A
  /// negative deadline is already expired: submit() answers Timeout
  /// inline without dequeuing onto a worker.
  std::chrono::steady_clock::duration deadline{};
  /// Copy the final domain bitsets into the response (costly; for
  /// equivalence checks and debugging).
  bool capture_domains = false;
  /// Retry identity (0 = none).  Requests sharing a non-zero key are
  /// the *same logical request* retransmitted: the service treats the
  /// key as a single-flight handle — a duplicate arriving while the
  /// original is still parsing coalesces onto that execution, and one
  /// arriving after it completed Ok is served from the memoized result
  /// (`cached` set on the response either way).  Failed executions are
  /// not memoized, so retrying a failure re-executes.  Keys are scoped
  /// to (tenant, grammar epoch) like cache keys.
  std::uint64_t idempotency_key = 0;
};

struct ParseResponse {
  RequestStatus status = RequestStatus::Ok;
  bool accepted = false;
  std::size_t alive_role_values = 0;
  /// Backend-independent fingerprint of the final domains (identical
  /// to a single-threaded parse of the same sentence).
  std::uint64_t domains_hash = 0;
  std::vector<util::DynBitset> domains;  // iff capture_domains
  /// Backend that produced this response: the requested one, Serial
  /// when the service degraded (fallback retry / open circuit breaker),
  /// or — on a cache hit — whichever backend populated the entry (the
  /// result is bit-identical either way).
  engine::Backend served_backend = engine::Backend::Serial;
  /// True when the service degraded the request onto Serial.  The
  /// result is still bit-identical (same fixpoint), only the cost
  /// model differs — see docs/ROBUSTNESS.md.
  bool degraded = false;
  /// Served from the result cache without running an engine.
  bool cached = false;
  /// Waited on a concurrent duplicate's in-flight parse (single
  /// flight); implies `cached`.
  bool coalesced = false;
  /// Epoch of the grammar snapshot this request was pinned to at
  /// submit (0 when the request never resolved a grammar).
  std::uint64_t grammar_epoch = 0;
  /// Human-readable failure detail for BadRequest/Faulted.
  std::string error;
  int worker = -1;
  double queue_seconds = 0.0;  // submission -> dequeue
  double parse_seconds = 0.0;  // dequeue -> done
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected_at_submit = 0;  // after shutdown began
  std::uint64_t bad_requests = 0;        // BadRequest responses
  std::uint64_t overloaded = 0;          // shed at submit (queue full
                                         // or tenant quota)
  std::uint64_t faulted = 0;             // Faulted responses
  std::uint64_t fallback_retries = 0;    // serial retries attempted
  std::uint64_t fallback_ok = 0;         // serial retries that parsed Ok
  std::uint64_t breaker_trips = 0;       // circuit-breaker Open transitions
  std::uint64_t breaker_rerouted = 0;    // requests rerouted by open breaker
  std::uint64_t watchdog_stalls = 0;     // stuck workers cancelled
  /// SoA lane batching (Options::enable_batching): batches executed and
  /// requests served through them.  Mean occupancy is
  /// batched_requests / (batches * cdg::BatchParser::kLanes).
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  /// Result-cache counters (all zero when the cache is disabled).
  ResultCache::Stats cache;
  /// Idempotency-key single-flight counters (zero when disabled or no
  /// request carried a key).  `hits` = retries served from a completed
  /// execution; `coalesced` = retries that waited on the in-flight
  /// original instead of double-executing.
  ResultCache::Stats idempotency;
  double elapsed_seconds = 0.0;          // since service construction
  double throughput_sps = 0.0;           // completed / elapsed
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  std::size_t queue_depth = 0;
  int threads = 0;
  std::vector<WorkerStats> workers;
  /// Indexed by static_cast<size_t>(engine::Backend).
  engine::BackendStats backends[engine::kNumBackends];
};

class ParseService {
 public:
  struct Options {
    /// Worker threads; <= 0 uses hardware_concurrency.
    int threads = 0;
    /// Bounded queue capacity (back-pressure on submitters).
    std::size_t queue_capacity = 256;
    /// Engine configuration for the single-grammar compat constructors
    /// (which publish the grammar into an owned registry).  Services
    /// built over an external registry take each bundle's options
    /// instead.  Defaults keep the OpenMP engine at one thread per
    /// request (no nested teams) and the MasPar engine at fixpoint
    /// filtering (bit-identical results).
    engine::EngineSetOptions engines;
    /// Metrics registry the service publishes into (request counters,
    /// latency histograms, per-backend cost counters — the name/label
    /// reference is docs/OBSERVABILITY.md).  Defaults to the
    /// process-wide registry; tests inject their own for isolation.
    /// Must outlive the service.
    obs::Registry* metrics = &obs::Registry::global();
    /// Fallback lexicon for tagging ParseRequest::words when the
    /// resolved grammar bundle carries none.  Null means raw-word
    /// requests against lexicon-less bundles degrade to BadRequest.
    /// Must outlive the service.
    const cdg::Lexicon* lexicon = nullptr;
    /// Name the single-grammar compat constructors publish under, and
    /// the grammar used when ParseRequest::grammar is empty.
    std::string default_grammar = "default";
    /// Parse-result cache with single-flight coalescing (off by
    /// default: single-shot workloads pay the bookkeeping without the
    /// hits).  See serve/result_cache.h for semantics.
    bool enable_result_cache = false;
    /// Max ready entries held by the cache (LRU eviction beyond this).
    std::size_t result_cache_capacity = 1024;
    /// Idempotency-key single-flight window: completed results are held
    /// under their request key (LRU, this many entries) so a retried
    /// request never double-executes.  Independent of the result cache
    /// (which keys on content, not request identity) and always on by
    /// default — requests without a key pay nothing.  0 disables.
    std::size_t idempotency_capacity = 4096;
    /// Shed load instead of blocking: submit() answers Overloaded when
    /// the queue is full rather than exerting back-pressure.
    bool shed_load = false;
    /// Retry a faulted/stalled request once on the Serial backend
    /// (bit-identical result, different cost model).
    bool retry_serial = true;
    /// Per-backend circuit breaker: a backend that faults repeatedly
    /// is bypassed (requests reroute to Serial) for a cooldown.
    bool enable_breaker = true;
    resil::CircuitBreaker::Options breaker{};
    /// SoA sentence batching for submit_batch / parse_batch (off by
    /// default): same-(grammar, length) groups of eligible requests are
    /// parsed together, up to cdg::BatchParser::kLanes sentences per
    /// SIMD tile sweep (see cdg/batch.h).  Eligible = Serial backend,
    /// pre-tagged sentence (no raw words), no deadline; everything else
    /// falls back to per-request submission.  Grouping is deterministic
    /// (input order; groups dispatch in first-appearance order) and
    /// results stay bit-identical to sequential parses (confluence) —
    /// only the cost counters reflect the lockstep schedule.  Batched
    /// groups bypass the result cache and the watchdog.
    bool enable_batching = false;
    /// Minimum lanes for a batch chunk to run through the BatchParser.
    /// A lockstep sweep costs nearly the same at any fill, so thin
    /// chunks (a group's tail after slicing into kLanes-sized pieces)
    /// are cheaper on the ordinary per-request path.  Chunks below the
    /// threshold fall back per-request; 1 batches everything eligible.
    std::size_t min_batch_lanes = 4;
    /// Cancel a worker stuck in one parse for longer than this
    /// (cooperative — engines poll at checkpoints).  Zero disables the
    /// watchdog.
    std::chrono::steady_clock::duration watchdog_stall{};
    std::chrono::steady_clock::duration watchdog_interval =
        std::chrono::milliseconds(20);
  };

  using Callback = std::function<void(ParseResponse)>;

  /// Single-grammar compat constructors: publish `grammar` (borrowed;
  /// must outlive the service) into an owned registry under
  /// Options::default_grammar.
  explicit ParseService(const cdg::Grammar& grammar);
  ParseService(const cdg::Grammar& grammar, Options opt);

  /// Multi-tenant constructor: serve every grammar in `registry`
  /// (which must outlive the service).  Grammars published after
  /// construction are served too — resolution happens per request.
  ParseService(GrammarRegistry& registry, Options opt);

  /// Drains outstanding requests, then joins the pool.
  ~ParseService();

  ParseService(const ParseService&) = delete;
  ParseService& operator=(const ParseService&) = delete;

  /// Enqueues one request; blocks while the queue is full.  The future
  /// is always satisfied — with status ShuttingDown if the service is
  /// stopping.
  std::future<ParseResponse> submit(ParseRequest req);

  /// Callback flavour: `cb` runs on the worker thread that parsed the
  /// request (or inline on the submitter when shutting down).
  void submit(ParseRequest req, Callback cb);

  /// Enqueues a whole batch; futures are in input order.
  std::vector<std::future<ParseResponse>> submit_batch(
      std::vector<ParseRequest> reqs);

  /// Convenience: submit a batch and wait; responses in input order.
  std::vector<ParseResponse> parse_batch(std::vector<ParseRequest> reqs);

  /// Initiates drain-then-join shutdown (idempotent; the destructor
  /// calls it too).
  void shutdown();

  ServiceStats stats() const;

  /// Prometheus text exposition of the service's registry (the one
  /// Options::metrics pointed at): everything `stats()` reports as a
  /// struct, in scrapeable form.  Thread-safe; may run concurrently
  /// with in-flight requests (counter/sum skew of the in-flight
  /// observations is possible, torn values are not).
  std::string metrics_text() const;

  /// The registry requests resolve against (owned on the compat path).
  GrammarRegistry& registry() { return *registry_; }
  const GrammarRegistry& registry() const { return *registry_; }

  /// The result cache, or null when disabled.
  const ResultCache* result_cache() const { return cache_.get(); }

  /// The idempotency-key single-flight cache, or null when disabled.
  const ResultCache* idempotency_cache() const { return idem_cache_.get(); }

  /// Default grammar's current snapshot (compat accessor; requires the
  /// default grammar to be published).
  const cdg::Grammar& grammar() const;

  int threads() const { return pool_->num_threads(); }

 private:
  /// Per-worker mutable state; only worker i touches scratch_[i].  The
  /// pooled networks carry their whole arenas (domains, arc matrices,
  /// AC-4 counters, elimination staging) — one allocation per shape,
  /// reused across requests.  `pinned` keeps every snapshot with live
  /// pooled networks alive (a pooled network references its grammar);
  /// when a request arrives under a newer epoch of a tenant, the
  /// worker purges that tenant's retired networks and drops the pin.
  struct WorkerScratch {
    engine::NetworkScratch networks;
    std::unordered_map<const cdg::Grammar*, GrammarSnapshot> pinned;
    /// One reusable SoA batch parser per pinned grammar (its
    /// interleaved buffers persist across same-shape batches); purged
    /// together with the pooled networks on an epoch bump.
    std::unordered_map<const cdg::Grammar*, cdg::BatchParser> batchers;
  };

  /// Per-tenant admission + accounting state, created on first sight
  /// of the tenant at submit.
  struct TenantState {
    std::atomic<std::int64_t> inflight{0};
    /// Highest epoch seen at admission; a bump triggers cache
    /// invalidation of the tenant's retired entries.
    std::atomic<std::uint64_t> last_epoch{0};
    obs::Counter* requests = nullptr;  // parsec_serve_tenant_requests_total
  };

  /// One engine attempt (first try or serial fallback) for stats
  /// roll-up: which backend ran and what it cost.
  struct Attempt {
    engine::Backend backend = engine::Backend::Serial;
    engine::BackendStats delta;
  };

  /// Shared delegate: `compat_grammar` (single-grammar compat path,
  /// published into an owned registry) or `external` registry.
  ParseService(const cdg::Grammar* compat_grammar, GrammarRegistry* external,
               Options opt);

  /// Resolves the request's grammar and enforces the tenant quota.
  /// Returns false after filling `resp` for an inline answer
  /// (BadRequest / Overloaded).
  bool admit(const ParseRequest& req, GrammarSnapshot& snap,
             std::shared_ptr<TenantState>& tenant, ParseResponse& resp);

  void run_request(int worker, ParseRequest req, GrammarSnapshot snap,
                   std::shared_ptr<TenantState> tenant,
                   std::chrono::steady_clock::time_point submitted,
                   std::promise<ParseResponse> promise, Callback cb);

  /// One admitted member of an SoA batch group (Options::enable_batching).
  struct BatchItem {
    ParseRequest req;
    GrammarSnapshot snap;
    std::shared_ptr<TenantState> tenant;
    std::promise<ParseResponse> promise;
  };
  /// Parses one same-(grammar, length) group on a pool worker via the
  /// worker's pooled BatchParser and answers every member's promise.
  void run_batch(int worker, std::vector<BatchItem> items,
                 std::chrono::steady_clock::time_point submitted);
  void record(const ParseResponse& resp,
              const std::vector<Attempt>& attempts);
  /// Accounts a request that never reached a worker (rejected,
  /// overloaded, pre-expired, or unknown grammar at submit) in the
  /// serve-level exactly-once status family and the service counters.
  void record_at_submit(const ParseResponse& resp);

  /// Owned registry for the single-grammar compat constructors; null
  /// when the service serves an external registry.
  std::unique_ptr<GrammarRegistry> owned_registry_;
  GrammarRegistry* registry_ = nullptr;
  Options opt_;
  std::unique_ptr<ResultCache> cache_;  // null when disabled
  /// Single-flight dedup of retried requests, keyed on the request's
  /// idempotency key instead of the sentence hash.  A separate
  /// ResultCache instance so the two key spaces cannot collide (no
  /// metrics registry: its counters surface via ServiceStats).
  std::unique_ptr<ResultCache> idem_cache_;  // null when disabled
  /// Handles into opt_.metrics, resolved once at construction; updates
  /// in record() are lock-free (see obs/metrics.h).  The queue-depth
  /// gauge is refreshed on record()/stats() rather than registered as a
  /// scrape-time callback so the registry never holds a callback into a
  /// destroyed service.
  engine::StatsPublisher publisher_;
  obs::Counter* timeouts_total_;
  obs::Counter* rejected_at_submit_total_;
  obs::Histogram* queue_wait_seconds_;
  obs::Gauge* queue_depth_gauge_;
  /// parsec_serve_requests_total{status=...}: one disjoint counter per
  /// RequestStatus; every submitted request is counted exactly once.
  obs::Counter* serve_status_[kNumRequestStatuses];
  obs::Counter* fallback_retries_total_;
  obs::Counter* fallback_ok_total_;
  obs::Counter* breaker_trips_total_;
  obs::Counter* breaker_rerouted_total_;
  obs::Counter* watchdog_stalls_total_;
  obs::Counter* batches_total_;
  obs::Counter* batched_requests_total_;
  std::chrono::steady_clock::time_point start_;
  /// One breaker per backend (Serial's is never consulted — it is the
  /// degradation target, not a degradable source).
  resil::CircuitBreaker breakers_[engine::kNumBackends];
  std::unique_ptr<resil::Watchdog> watchdog_;  // null when disabled
  std::vector<WorkerScratch> scratch_;
  mutable std::mutex tenants_mutex_;
  std::unordered_map<int, std::shared_ptr<TenantState>> tenants_;
  std::unique_ptr<ThreadPool> pool_;  // last member: dies first

  mutable std::mutex stats_mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rejected_at_submit_ = 0;
  std::uint64_t bad_requests_ = 0;
  std::uint64_t overloaded_ = 0;
  std::uint64_t faulted_ = 0;
  std::uint64_t fallback_retries_ = 0;
  std::uint64_t fallback_ok_ = 0;
  std::uint64_t breaker_rerouted_ = 0;
  std::uint64_t watchdog_stalls_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  util::Stats latency_;        // seconds, submission -> completion
  util::Quantiles quantiles_;  // same samples, percentile view
  engine::BackendStats backend_stats_[engine::kNumBackends];
};

}  // namespace parsec::serve
