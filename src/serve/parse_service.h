// Batched multi-sentence parse service.
//
// The paper parallelizes *within* one sentence (O(k + log n) steps on
// the MasPar); a parsing service also scales *across* sentences — the
// dimension real traffic arrives on.  ParseService drives a stream of
// independent parse requests through the existing engines on a
// fixed-size thread pool:
//
//   * per-request backend selection (serial / omp / pram / maspar);
//   * per-worker reusable scratch (arena-backed constraint-network
//     pools via Network::reinit; the arena carries domains, arcs, AC-4
//     counters and elimination staging in one allocation) so
//     steady-state parsing of repeating sentence shapes is
//     allocation-free on the hot path;
//   * per-request deadlines — an expired request returns a Timeout
//     response instead of stalling the queue (the serial backend even
//     aborts mid-parse via cdg::CancelFn);
//   * batched submission returning futures (or invoking callbacks) in
//     input order, so batch results are trivially ordered;
//   * aggregate ServiceStats: throughput, p50/p95/p99 latency, queue
//     depth, per-worker utilization, and per-backend work counters
//     rolled up from NetworkCounters / StepStats / MachineStats.
//
// Every parse is single-threaded and deterministic, so batched results
// are bit-identical to a single-threaded run of the same requests
// (ParseResponse::domains_hash; tests/serve verifies byte equality).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "parsec/backend.h"
#include "serve/thread_pool.h"
#include "util/stats.h"

namespace parsec::serve {

enum class RequestStatus {
  Ok,            // parsed (accepted or rejected — see `accepted`)
  Timeout,       // deadline expired while queued or mid-parse
  ShuttingDown,  // submitted after shutdown began
};

const char* to_string(RequestStatus s);

struct ParseRequest {
  cdg::Sentence sentence;
  engine::Backend backend = engine::Backend::Serial;
  /// Relative deadline measured from submission; zero = none.
  std::chrono::steady_clock::duration deadline{};
  /// Copy the final domain bitsets into the response (costly; for
  /// equivalence checks and debugging).
  bool capture_domains = false;
};

struct ParseResponse {
  RequestStatus status = RequestStatus::Ok;
  bool accepted = false;
  std::size_t alive_role_values = 0;
  /// Backend-independent fingerprint of the final domains (identical
  /// to a single-threaded parse of the same sentence).
  std::uint64_t domains_hash = 0;
  std::vector<util::DynBitset> domains;  // iff capture_domains
  int worker = -1;
  double queue_seconds = 0.0;  // submission -> dequeue
  double parse_seconds = 0.0;  // dequeue -> done
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected_at_submit = 0;  // after shutdown began
  double elapsed_seconds = 0.0;          // since service construction
  double throughput_sps = 0.0;           // completed / elapsed
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  std::size_t queue_depth = 0;
  int threads = 0;
  std::vector<WorkerStats> workers;
  /// Indexed by static_cast<size_t>(engine::Backend).
  engine::BackendStats backends[engine::kNumBackends];
};

class ParseService {
 public:
  struct Options {
    /// Worker threads; <= 0 uses hardware_concurrency.
    int threads = 0;
    /// Bounded queue capacity (back-pressure on submitters).
    std::size_t queue_capacity = 256;
    /// Engine configuration shared by all workers.  Defaults keep the
    /// OpenMP engine at one thread per request (no nested teams) and
    /// the MasPar engine at fixpoint filtering (bit-identical results).
    engine::EngineSetOptions engines;
    /// Metrics registry the service publishes into (request counters,
    /// latency histograms, per-backend cost counters — the name/label
    /// reference is docs/OBSERVABILITY.md).  Defaults to the
    /// process-wide registry; tests inject their own for isolation.
    /// Must outlive the service.
    obs::Registry* metrics = &obs::Registry::global();
  };

  using Callback = std::function<void(ParseResponse)>;

  explicit ParseService(const cdg::Grammar& grammar);
  ParseService(const cdg::Grammar& grammar, Options opt);

  /// Drains outstanding requests, then joins the pool.
  ~ParseService();

  ParseService(const ParseService&) = delete;
  ParseService& operator=(const ParseService&) = delete;

  /// Enqueues one request; blocks while the queue is full.  The future
  /// is always satisfied — with status ShuttingDown if the service is
  /// stopping.
  std::future<ParseResponse> submit(ParseRequest req);

  /// Callback flavour: `cb` runs on the worker thread that parsed the
  /// request (or inline on the submitter when shutting down).
  void submit(ParseRequest req, Callback cb);

  /// Enqueues a whole batch; futures are in input order.
  std::vector<std::future<ParseResponse>> submit_batch(
      std::vector<ParseRequest> reqs);

  /// Convenience: submit a batch and wait; responses in input order.
  std::vector<ParseResponse> parse_batch(std::vector<ParseRequest> reqs);

  /// Initiates drain-then-join shutdown (idempotent; the destructor
  /// calls it too).
  void shutdown();

  ServiceStats stats() const;

  /// Prometheus text exposition of the service's registry (the one
  /// Options::metrics pointed at): everything `stats()` reports as a
  /// struct, in scrapeable form.  Thread-safe; may run concurrently
  /// with in-flight requests (counter/sum skew of the in-flight
  /// observations is possible, torn values are not).
  std::string metrics_text() const;

  const cdg::Grammar& grammar() const { return engines_.grammar(); }
  int threads() const { return pool_->num_threads(); }

 private:
  /// Per-worker mutable state; only worker i touches scratch_[i].  The
  /// pooled networks carry their whole arenas (domains, arc matrices,
  /// AC-4 counters, elimination staging) — one allocation per shape,
  /// reused across requests.
  struct WorkerScratch {
    engine::NetworkScratch networks;
  };

  void run_request(int worker, ParseRequest req,
                   std::chrono::steady_clock::time_point submitted,
                   std::promise<ParseResponse> promise, Callback cb);
  void record(const ParseRequest& req, const ParseResponse& resp,
              const engine::BackendStats& delta);

  engine::EngineSet engines_;
  Options opt_;
  /// Handles into opt_.metrics, resolved once at construction; updates
  /// in record() are lock-free (see obs/metrics.h).  The queue-depth
  /// gauge is refreshed on record()/stats() rather than registered as a
  /// scrape-time callback so the registry never holds a callback into a
  /// destroyed service.
  engine::StatsPublisher publisher_;
  obs::Counter* timeouts_total_;
  obs::Counter* rejected_at_submit_total_;
  obs::Histogram* queue_wait_seconds_;
  obs::Gauge* queue_depth_gauge_;
  std::chrono::steady_clock::time_point start_;
  std::vector<WorkerScratch> scratch_;
  std::unique_ptr<ThreadPool> pool_;  // last member: dies first

  mutable std::mutex stats_mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rejected_at_submit_ = 0;
  util::Stats latency_;        // seconds, submission -> completion
  util::Quantiles quantiles_;  // same samples, percentile view
  engine::BackendStats backend_stats_[engine::kNumBackends];
};

}  // namespace parsec::serve
