// Machine-readable throughput reports (BENCH_throughput.json).
//
// Tiny purpose-built JSON emitter — the repo takes no dependencies —
// shared by bench_throughput and parse_server_demo so every perf PR can
// diff a served-traffic metric.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/parse_service.h"

namespace parsec::serve {

/// One measured service configuration.
struct ThroughputRow {
  int threads = 0;
  std::size_t batch_size = 0;
  std::string backend;
  std::uint64_t sentences = 0;
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;  // sentences / wall second
  double speedup = 0.0;         // vs the single-thread row
  ServiceStats stats;
};

/// Writes `{"workload": ..., "rows": [...]}` to `os`.
void write_throughput_report(std::ostream& os, const std::string& workload,
                             const std::vector<ThroughputRow>& rows);

/// Convenience: render ServiceStats as a human-readable multi-line
/// summary (demo CLI and smoke logs).
std::string render_service_stats(const ServiceStats& s);

}  // namespace parsec::serve
