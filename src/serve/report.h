// Machine-readable throughput reports (BENCH_throughput.json).
//
// Tiny purpose-built JSON emitter — the repo takes no dependencies —
// shared by bench_throughput and parse_server_demo so every perf PR can
// diff a served-traffic metric.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/parse_service.h"

namespace parsec::serve {

/// One measured service configuration.
struct ThroughputRow {
  int threads = 0;
  std::size_t batch_size = 0;
  std::string backend;
  std::uint64_t sentences = 0;
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;  // sentences / wall second
  double speedup = 0.0;         // vs the single-thread row
  ServiceStats stats;
};

/// Reference numbers captured on a past commit, embedded in the report
/// so a single BENCH_throughput.json carries its own before/after
/// comparison (the perf-smoke CI job diffs against these).
struct ThroughputBaseline {
  std::string captured;  // ISO date of the baseline run
  std::string commit;    // short description of the baseline revision
  double single_thread_sps = 0.0;
};

/// Duplicated-traffic sweep: the same request stream replayed through a
/// cache-off and a cache-on service (bench_throughput --dup-sweep).
/// The stream cycles `unique_sentences` distinct inputs over `requests`
/// total, so a 10%-unique stream measures the cache at a 90% duplicate
/// rate.  Runs single-threaded so the hit/miss counters are exact
/// (gateable), not a racy split.
struct DupSweepResult {
  std::uint64_t requests = 0;
  std::uint64_t unique_sentences = 0;
  int threads = 1;
  std::string backend;
  double wall_off_seconds = 0.0;
  double wall_on_seconds = 0.0;
  double sps_off = 0.0;       // cache-off sentences / second
  double sps_on = 0.0;        // cache-on sentences / second
  double speedup = 0.0;       // sps_on / sps_off
  double hit_rate = 0.0;      // (hits + coalesced) / lookups
  ResultCache::Stats cache;   // cache-on run's counters
};

/// Writes `{"workload": ..., "baseline": ..., "dup_sweep": ...,
/// "rows": [...]}` to `os`.  `baseline` (if non-null) embeds the
/// pre-change reference throughput; each row then also reports
/// `vs_baseline` for the matching config.  `dup` (if non-null) embeds
/// the duplicated-traffic cache sweep.
void write_throughput_report(std::ostream& os, const std::string& workload,
                             const std::vector<ThroughputRow>& rows,
                             const ThroughputBaseline* baseline = nullptr,
                             const DupSweepResult* dup = nullptr);

/// Convenience: render ServiceStats as a human-readable multi-line
/// summary (demo CLI and smoke logs).
std::string render_service_stats(const ServiceStats& s);

}  // namespace parsec::serve
