// Machine-readable throughput reports (BENCH_throughput.json).
//
// Tiny purpose-built JSON emitter — the repo takes no dependencies —
// shared by bench_throughput and parse_server_demo so every perf PR can
// diff a served-traffic metric.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/parse_service.h"

namespace parsec::serve {

/// One measured service configuration.
struct ThroughputRow {
  int threads = 0;
  std::size_t batch_size = 0;
  std::string backend;
  std::uint64_t sentences = 0;
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;  // sentences / wall second
  double speedup = 0.0;         // vs the single-thread row
  double efficiency = 0.0;      // speedup / threads (1.0 = perfect scaling)
  ServiceStats stats;
};

/// Reference numbers captured on a past commit, embedded in the report
/// so a single BENCH_throughput.json carries its own before/after
/// comparison (the perf-smoke CI job diffs against these).
struct ThroughputBaseline {
  std::string captured;  // ISO date of the baseline run
  std::string commit;    // short description of the baseline revision
  double single_thread_sps = 0.0;
};

/// Duplicated-traffic sweep: the same request stream replayed through a
/// cache-off and a cache-on service (bench_throughput --dup-sweep).
/// The stream cycles `unique_sentences` distinct inputs over `requests`
/// total, so a 10%-unique stream measures the cache at a 90% duplicate
/// rate.  Runs single-threaded so the hit/miss counters are exact
/// (gateable), not a racy split.
struct DupSweepResult {
  std::uint64_t requests = 0;
  std::uint64_t unique_sentences = 0;
  int threads = 1;
  std::string backend;
  double wall_off_seconds = 0.0;
  double wall_on_seconds = 0.0;
  double sps_off = 0.0;       // cache-off sentences / second
  double sps_on = 0.0;        // cache-on sentences / second
  double speedup = 0.0;       // sps_on / sps_off
  double hit_rate = 0.0;      // (hits + coalesced) / lookups
  ResultCache::Stats cache;   // cache-on run's counters
};

/// SoA lane-batching sweep: the same workload replayed through an
/// ordinary service and one with Options::enable_batching, both
/// single-threaded (bench_throughput, serial backend only).  The
/// batched service groups same-(grammar, length) requests into
/// interleaved lane batches, so `speedup` is the service-level win of
/// the SoA sweep kernels and `occupancy` is the mean lane fill.
struct BatchSweepResult {
  std::uint64_t requests = 0;
  int threads = 1;
  double wall_off_seconds = 0.0;  // enable_batching = false
  double wall_on_seconds = 0.0;   // enable_batching = true
  double sps_off = 0.0;
  double sps_on = 0.0;
  double speedup = 0.0;              // sps_on / sps_off
  std::uint64_t batches = 0;         // lane batches dispatched
  std::uint64_t batched_requests = 0;
  double occupancy = 0.0;  // batched_requests / (batches * kLanes)
};

/// Writes `{"workload": ..., "baseline": ..., "dup_sweep": ...,
/// "batch_sweep": ..., "rows": [...]}` to `os`.  `baseline` (if
/// non-null) embeds the pre-change reference throughput; each row then
/// also reports `vs_baseline` for the matching config.  `dup` (if
/// non-null) embeds the duplicated-traffic cache sweep; `soa` (if
/// non-null) embeds the SoA lane-batching sweep.
void write_throughput_report(std::ostream& os, const std::string& workload,
                             const std::vector<ThroughputRow>& rows,
                             const ThroughputBaseline* baseline = nullptr,
                             const DupSweepResult* dup = nullptr,
                             const BatchSweepResult* soa = nullptr);

/// Convenience: render ServiceStats as a human-readable multi-line
/// summary (demo CLI and smoke logs).
std::string render_service_stats(const ServiceStats& s);

}  // namespace parsec::serve
