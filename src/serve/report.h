// Machine-readable throughput reports (BENCH_throughput.json).
//
// Tiny purpose-built JSON emitter — the repo takes no dependencies —
// shared by bench_throughput and parse_server_demo so every perf PR can
// diff a served-traffic metric.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/parse_service.h"

namespace parsec::serve {

/// One measured service configuration.
struct ThroughputRow {
  int threads = 0;
  std::size_t batch_size = 0;
  std::string backend;
  std::uint64_t sentences = 0;
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;  // sentences / wall second
  double speedup = 0.0;         // vs the single-thread row
  ServiceStats stats;
};

/// Reference numbers captured on a past commit, embedded in the report
/// so a single BENCH_throughput.json carries its own before/after
/// comparison (the perf-smoke CI job diffs against these).
struct ThroughputBaseline {
  std::string captured;  // ISO date of the baseline run
  std::string commit;    // short description of the baseline revision
  double single_thread_sps = 0.0;
};

/// Writes `{"workload": ..., "baseline": ..., "rows": [...]}` to `os`.
/// `baseline` (if non-null) embeds the pre-change reference throughput;
/// each row then also reports `vs_baseline` for the matching config.
void write_throughput_report(std::ostream& os, const std::string& workload,
                             const std::vector<ThroughputRow>& rows,
                             const ThroughputBaseline* baseline = nullptr);

/// Convenience: render ServiceStats as a human-readable multi-line
/// summary (demo CLI and smoke logs).
std::string render_service_stats(const ServiceStats& s);

}  // namespace parsec::serve
