// Fixed-size thread pool over a BoundedQueue.
//
// Workers are numbered 0..threads-1 and every job receives its worker
// index, so callers can keep per-worker mutable scratch (the parse
// service's network pools) without any locking on the hot path.
// Shutdown is drain-then-join: queued jobs still run, then workers
// exit.  Per-worker counters are plain atomics so stats snapshots never
// contend with job execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "serve/work_queue.h"

namespace parsec::serve {

struct WorkerStats {
  std::uint64_t jobs = 0;
  double busy_seconds = 0.0;
};

class ThreadPool {
 public:
  /// A job sees the index of the worker running it.
  using Job = std::function<void(int worker)>;

  /// `threads` <= 0 uses hardware_concurrency.
  explicit ThreadPool(int threads, std::size_t queue_capacity = 256);

  /// Drains and joins (idempotent with shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; blocks while the queue is full (back-pressure).
  /// Returns false once shutdown has begun.
  bool post(Job job);

  /// Non-blocking flavour: false when the queue is full or shutdown
  /// has begun — callers that shed load distinguish the two via
  /// shutting_down().
  bool try_post(Job job);

  /// Closes the queue, lets workers drain every queued job, joins.
  /// Safe to call while jobs are running or queued, and more than once.
  void shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const { return queue_.size(); }
  bool shutting_down() const { return queue_.closed(); }

  /// Snapshot of per-worker counters (relaxed reads; totals may lag a
  /// running job by one update).
  std::vector<WorkerStats> worker_stats() const;

 private:
  struct alignas(64) Counters {  // one cache line per worker
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<double> busy_seconds{0.0};
  };

  void worker_loop(int index);

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::unique_ptr<Counters[]> counters_;
  std::atomic<bool> joined_{false};
  std::mutex join_mutex_;
};

}  // namespace parsec::serve
