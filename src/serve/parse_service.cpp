#include "serve/parse_service.h"

#include <utility>

namespace parsec::serve {

using clock = std::chrono::steady_clock;

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Ok:
      return "ok";
    case RequestStatus::Timeout:
      return "timeout";
    case RequestStatus::ShuttingDown:
      return "shutting-down";
  }
  return "?";
}

ParseService::ParseService(const cdg::Grammar& grammar)
    : ParseService(grammar, Options()) {}

ParseService::ParseService(const cdg::Grammar& grammar, Options opt)
    : engines_(grammar, opt.engines),
      opt_(opt),
      publisher_(opt.metrics),
      timeouts_total_(&opt.metrics->counter(
          "parsec_serve_timeouts_total",
          "Requests answered Timeout (expired queued or mid-parse).")),
      rejected_at_submit_total_(&opt.metrics->counter(
          "parsec_serve_rejected_at_submit_total",
          "Requests refused because shutdown had begun.")),
      queue_wait_seconds_(&opt.metrics->histogram(
          "parsec_serve_queue_wait_seconds",
          "Time a request spent queued before a worker dequeued it.",
          obs::default_latency_buckets_seconds())),
      queue_depth_gauge_(&opt.metrics->gauge(
          "parsec_serve_queue_depth",
          "Requests waiting in the pool queue (sampled at record/stats).")),
      start_(clock::now()) {
  pool_ = std::make_unique<ThreadPool>(opt.threads, opt.queue_capacity);
  scratch_.resize(static_cast<std::size_t>(pool_->num_threads()));
}

ParseService::~ParseService() { shutdown(); }

void ParseService::shutdown() { pool_->shutdown(); }

std::future<ParseResponse> ParseService::submit(ParseRequest req) {
  auto promise = std::make_shared<std::promise<ParseResponse>>();
  std::future<ParseResponse> future = promise->get_future();
  const auto submitted = clock::now();
  {
    std::lock_guard lock(stats_mutex_);
    ++submitted_;
  }
  bool posted =
      pool_->post([this, req = std::move(req), submitted, promise](
                      int worker) mutable {
        run_request(worker, std::move(req), submitted, std::move(*promise),
                    nullptr);
      });
  if (!posted) {
    // Shutdown raced the submission; the lambda was dropped, but we
    // still hold the promise — satisfy the future inline.
    rejected_at_submit_total_->inc();
    {
      std::lock_guard lock(stats_mutex_);
      ++rejected_at_submit_;
    }
    ParseResponse resp;
    resp.status = RequestStatus::ShuttingDown;
    promise->set_value(std::move(resp));
  }
  return future;
}

void ParseService::submit(ParseRequest req, Callback cb) {
  const auto submitted = clock::now();
  {
    std::lock_guard lock(stats_mutex_);
    ++submitted_;
  }
  bool posted = pool_->post([this, req = std::move(req), submitted,
                             cb = std::move(cb)](int worker) mutable {
    run_request(worker, std::move(req), submitted,
                std::promise<ParseResponse>{}, std::move(cb));
  });
  if (!posted) {
    ParseResponse resp;
    resp.status = RequestStatus::ShuttingDown;
    rejected_at_submit_total_->inc();
    {
      std::lock_guard lock(stats_mutex_);
      ++rejected_at_submit_;
    }
    if (cb) cb(std::move(resp));
  }
}

std::vector<std::future<ParseResponse>> ParseService::submit_batch(
    std::vector<ParseRequest> reqs) {
  std::vector<std::future<ParseResponse>> futures;
  futures.reserve(reqs.size());
  for (auto& r : reqs) futures.push_back(submit(std::move(r)));
  return futures;
}

std::vector<ParseResponse> ParseService::parse_batch(
    std::vector<ParseRequest> reqs) {
  auto futures = submit_batch(std::move(reqs));
  std::vector<ParseResponse> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

void ParseService::run_request(int worker, ParseRequest req,
                               clock::time_point submitted,
                               std::promise<ParseResponse> promise,
                               Callback cb) {
  const auto dequeued = clock::now();
  ParseResponse resp;
  resp.worker = worker;
  resp.queue_seconds = std::chrono::duration<double>(dequeued - submitted).count();

  const bool has_deadline = req.deadline.count() > 0;
  const auto deadline_at = submitted + req.deadline;
  engine::BackendStats delta;

  if (has_deadline && dequeued >= deadline_at) {
    // Expired while queued: answer without parsing.
    resp.status = RequestStatus::Timeout;
    delta.requests = 1;
    delta.cancelled = 1;
  } else {
    cdg::CancelFn cancel;
    if (has_deadline)
      cancel = [deadline_at] { return clock::now() >= deadline_at; };
    WorkerScratch& scratch = scratch_[static_cast<std::size_t>(worker)];
    engine::BackendRun run = engine::run_backend(
        engines_, req.backend, req.sentence, &scratch.networks, cancel,
        req.capture_domains);
    resp.status = run.cancelled ? RequestStatus::Timeout : RequestStatus::Ok;
    resp.accepted = run.accepted;
    resp.alive_role_values = run.alive_role_values;
    resp.domains_hash = run.domains_hash;
    resp.domains = std::move(run.domains);
    delta = run.stats;
  }
  resp.parse_seconds =
      std::chrono::duration<double>(clock::now() - dequeued).count();

  record(req, resp, delta);
  if (cb)
    cb(std::move(resp));
  else
    promise.set_value(std::move(resp));
}

void ParseService::record(const ParseRequest& req, const ParseResponse& resp,
                          const engine::BackendStats& delta) {
  const double total_seconds = resp.queue_seconds + resp.parse_seconds;
  // Registry updates first: lock-free, outside the stats mutex.
  publisher_.publish(req.backend, delta, total_seconds);
  if (resp.status == RequestStatus::Timeout) timeouts_total_->inc();
  queue_wait_seconds_->observe(resp.queue_seconds);
  queue_depth_gauge_->set(static_cast<double>(pool_->queue_depth()));
  std::lock_guard lock(stats_mutex_);
  ++completed_;
  if (resp.accepted) ++accepted_;
  if (resp.status == RequestStatus::Timeout) ++timeouts_;
  latency_.add(total_seconds);
  quantiles_.add(total_seconds);
  backend_stats_[static_cast<std::size_t>(req.backend)] += delta;
}

std::string ParseService::metrics_text() const {
  queue_depth_gauge_->set(static_cast<double>(pool_->queue_depth()));
  return opt_.metrics->scrape();
}

ServiceStats ParseService::stats() const {
  ServiceStats s;
  s.elapsed_seconds =
      std::chrono::duration<double>(clock::now() - start_).count();
  s.queue_depth = pool_->queue_depth();
  s.threads = pool_->num_threads();
  s.workers = pool_->worker_stats();
  std::lock_guard lock(stats_mutex_);
  s.submitted = submitted_;
  s.completed = completed_;
  s.accepted = accepted_;
  s.timeouts = timeouts_;
  s.rejected_at_submit = rejected_at_submit_;
  s.throughput_sps =
      s.elapsed_seconds > 0
          ? static_cast<double>(completed_) / s.elapsed_seconds
          : 0.0;
  s.latency_mean_ms = latency_.mean() * 1e3;
  s.latency_max_ms = latency_.max() * 1e3;
  s.latency_p50_ms = quantiles_.p50() * 1e3;
  s.latency_p95_ms = quantiles_.p95() * 1e3;
  s.latency_p99_ms = quantiles_.p99() * 1e3;
  for (std::size_t i = 0; i < engine::kNumBackends; ++i)
    s.backends[i] = backend_stats_[i];
  return s;
}

}  // namespace parsec::serve
