#include "serve/parse_service.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "resil/fault_plan.h"

namespace parsec::serve {

using clock = std::chrono::steady_clock;

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Ok:
      return "ok";
    case RequestStatus::Timeout:
      return "timeout";
    case RequestStatus::ShuttingDown:
      return "shutting-down";
    case RequestStatus::BadRequest:
      return "bad-request";
    case RequestStatus::Overloaded:
      return "overloaded";
    case RequestStatus::Faulted:
      return "faulted";
  }
  return "?";
}

ParseService::ParseService(const cdg::Grammar& grammar)
    : ParseService(grammar, Options()) {}

ParseService::ParseService(const cdg::Grammar& grammar, Options opt)
    : ParseService(&grammar, nullptr, std::move(opt)) {}

ParseService::ParseService(GrammarRegistry& registry, Options opt)
    : ParseService(nullptr, &registry, std::move(opt)) {}

ParseService::ParseService(const cdg::Grammar* compat_grammar,
                           GrammarRegistry* external, Options opt)
    : registry_(external),
      opt_(std::move(opt)),
      cache_(opt_.enable_result_cache
                 ? std::make_unique<ResultCache>(opt_.result_cache_capacity,
                                                 opt_.metrics)
                 : nullptr),
      idem_cache_(opt_.idempotency_capacity > 0
                      ? std::make_unique<ResultCache>(
                            opt_.idempotency_capacity, nullptr)
                      : nullptr),
      publisher_(opt_.metrics),
      timeouts_total_(&opt_.metrics->counter(
          "parsec_serve_timeouts_total",
          "Requests answered Timeout (expired at submit, queued, or "
          "mid-parse).")),
      rejected_at_submit_total_(&opt_.metrics->counter(
          "parsec_serve_rejected_at_submit_total",
          "Requests refused because shutdown had begun.")),
      queue_wait_seconds_(&opt_.metrics->histogram(
          "parsec_serve_queue_wait_seconds",
          "Time a request spent queued before a worker dequeued it.",
          obs::default_latency_buckets_seconds())),
      queue_depth_gauge_(&opt_.metrics->gauge(
          "parsec_serve_queue_depth",
          "Requests waiting in the pool queue (sampled at record/stats).")),
      fallback_retries_total_(&opt_.metrics->counter(
          "parsec_resil_fallback_retries_total",
          "Faulted/stalled requests retried on the Serial backend.")),
      fallback_ok_total_(&opt_.metrics->counter(
          "parsec_resil_fallback_ok_total",
          "Serial fallback retries that completed Ok.")),
      breaker_trips_total_(&opt_.metrics->counter(
          "parsec_resil_breaker_trips_total",
          "Circuit-breaker transitions to Open (any backend).")),
      breaker_rerouted_total_(&opt_.metrics->counter(
          "parsec_resil_breaker_rerouted_total",
          "Requests rerouted to Serial by an open circuit breaker.")),
      watchdog_stalls_total_(&opt_.metrics->counter(
          "parsec_resil_watchdog_stalls_total",
          "Stuck workers cancelled by the watchdog.")),
      batches_total_(&opt_.metrics->counter(
          "parsec_serve_batches_total",
          "SoA lane batches executed (same-shape Serial requests grouped "
          "by submit_batch under enable_batching).")),
      batched_requests_total_(&opt_.metrics->counter(
          "parsec_serve_batched_requests_total",
          "Requests served through an SoA lane batch; mean occupancy is "
          "this over batches * lanes.")),
      start_(clock::now()) {
  if (compat_grammar) {
    // Single-grammar compat: publish the borrowed grammar into an
    // owned registry under the default name (epoch 1).
    owned_registry_ = std::make_unique<GrammarRegistry>();
    GrammarRegistry::PublishOptions popt;
    popt.engines = opt_.engines;
    owned_registry_->publish_borrowed(opt_.default_grammar, *compat_grammar,
                                      opt_.lexicon, popt);
    registry_ = owned_registry_.get();
  }
  // One disjoint status counter per RequestStatus: every submitted
  // request lands in exactly one (the exactly-once invariant the chaos
  // tests assert).
  static constexpr RequestStatus kStatuses[kNumRequestStatuses] = {
      RequestStatus::Ok,          RequestStatus::Timeout,
      RequestStatus::ShuttingDown, RequestStatus::BadRequest,
      RequestStatus::Overloaded,  RequestStatus::Faulted};
  for (std::size_t i = 0; i < kNumRequestStatuses; ++i)
    serve_status_[static_cast<std::size_t>(kStatuses[i])] =
        &opt_.metrics->counter(
            "parsec_serve_requests_total",
            "Requests by final status; statuses are disjoint and each "
            "submitted request is counted exactly once.",
            {{"status", to_string(kStatuses[i])}});
  for (auto& b : breakers_) b.configure(opt_.breaker);
  pool_ = std::make_unique<ThreadPool>(opt_.threads, opt_.queue_capacity);
  scratch_.resize(static_cast<std::size_t>(pool_->num_threads()));
  if (opt_.watchdog_stall.count() > 0) {
    resil::Watchdog::Options wopts;
    wopts.stall_after = opt_.watchdog_stall;
    wopts.interval = opt_.watchdog_interval;
    watchdog_ = std::make_unique<resil::Watchdog>(
        static_cast<std::size_t>(pool_->num_threads()), wopts);
  }
}

ParseService::~ParseService() { shutdown(); }

void ParseService::shutdown() { pool_->shutdown(); }

const cdg::Grammar& ParseService::grammar() const {
  GrammarSnapshot snap = registry_->snapshot(opt_.default_grammar);
  if (!snap)
    throw std::logic_error("ParseService::grammar(): default grammar '" +
                           opt_.default_grammar + "' is not published");
  // The registry keeps the bundle alive (entries hold shared_ptrs);
  // the reference is valid until that entry is republished.
  return snap->grammar();
}

bool ParseService::admit(const ParseRequest& req, GrammarSnapshot& snap,
                         std::shared_ptr<TenantState>& tenant,
                         ParseResponse& resp) {
  const std::string& name =
      req.grammar.empty() ? opt_.default_grammar : req.grammar;
  snap = registry_->snapshot(name);
  if (!snap) {
    resp.status = RequestStatus::BadRequest;
    resp.error = "unknown grammar: " + name;
    return false;
  }
  resp.grammar_epoch = snap->epoch();
  {
    std::lock_guard lock(tenants_mutex_);
    auto& slot = tenants_[snap->tenant_id()];
    if (!slot) {
      slot = std::make_shared<TenantState>();
      slot->requests = &opt_.metrics->counter(
          "parsec_serve_tenant_requests_total",
          "Requests per grammar (tenant), counted at admission.",
          {{"tenant", snap->name()}});
    }
    tenant = slot;
  }
  tenant->requests->inc();
  // Epoch-bump invalidation: the first request admitted under a new
  // epoch drops the tenant's retired cache entries.  (The epoch in the
  // cache key already makes them unreachable; this frees the memory.)
  if (cache_) {
    std::uint64_t prev = tenant->last_epoch.load(std::memory_order_relaxed);
    if (snap->epoch() > prev &&
        tenant->last_epoch.compare_exchange_strong(
            prev, snap->epoch(), std::memory_order_relaxed)) {
      cache_->invalidate_tenant(snap->tenant_id(), snap->epoch());
    }
  }
  // Admission quota: hold an inflight slot from here until the request
  // completes (run_request) or is rejected (submit's failure paths).
  const std::size_t quota = snap->max_inflight();
  const std::int64_t in =
      tenant->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (quota > 0 && static_cast<std::size_t>(in) >= quota) {
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    resp.status = RequestStatus::Overloaded;
    resp.error = "tenant quota exhausted: " + name;
    return false;
  }
  return true;
}

std::future<ParseResponse> ParseService::submit(ParseRequest req) {
  auto promise = std::make_shared<std::promise<ParseResponse>>();
  std::future<ParseResponse> future = promise->get_future();
  const auto submitted = clock::now();
  {
    std::lock_guard lock(stats_mutex_);
    ++submitted_;
  }
  GrammarSnapshot snap;
  std::shared_ptr<TenantState> tenant;
  ParseResponse resp;
  if (!admit(req, snap, tenant, resp)) {
    record_at_submit(resp);
    promise->set_value(std::move(resp));
    return future;
  }
  if (req.deadline.count() < 0) {
    // Pre-expired deadline: answer Timeout inline; no worker ever
    // dequeues it and no backend runs.
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    resp.status = RequestStatus::Timeout;
    record_at_submit(resp);
    promise->set_value(std::move(resp));
    return future;
  }
  auto job = [this, req = std::move(req), snap = std::move(snap), tenant,
              submitted, promise](int worker) mutable {
    run_request(worker, std::move(req), std::move(snap), std::move(tenant),
                submitted, std::move(*promise), nullptr);
  };
  const bool posted =
      opt_.shed_load ? pool_->try_post(std::move(job))
                     : pool_->post(std::move(job));
  if (!posted) {
    // Queue full (shedding) or shutdown raced the submission; the
    // lambda was dropped, but we still hold the promise — satisfy the
    // future inline.
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    resp.status = pool_->shutting_down() ? RequestStatus::ShuttingDown
                                         : RequestStatus::Overloaded;
    record_at_submit(resp);
    promise->set_value(std::move(resp));
  }
  return future;
}

void ParseService::submit(ParseRequest req, Callback cb) {
  const auto submitted = clock::now();
  {
    std::lock_guard lock(stats_mutex_);
    ++submitted_;
  }
  GrammarSnapshot snap;
  std::shared_ptr<TenantState> tenant;
  ParseResponse resp;
  if (!admit(req, snap, tenant, resp)) {
    record_at_submit(resp);
    if (cb) cb(std::move(resp));
    return;
  }
  if (req.deadline.count() < 0) {
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    resp.status = RequestStatus::Timeout;
    record_at_submit(resp);
    if (cb) cb(std::move(resp));
    return;
  }
  // The callback is shared with the job rather than moved into it: a
  // failed post drops the job, and the rejection path below must still
  // be able to invoke it.
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  auto job = [this, req = std::move(req), snap = std::move(snap), tenant,
              submitted, shared_cb](int worker) mutable {
    run_request(worker, std::move(req), std::move(snap), std::move(tenant),
                submitted, std::promise<ParseResponse>{},
                std::move(*shared_cb));
  };
  const bool posted =
      opt_.shed_load ? pool_->try_post(std::move(job))
                     : pool_->post(std::move(job));
  if (!posted) {
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    resp.status = pool_->shutting_down() ? RequestStatus::ShuttingDown
                                         : RequestStatus::Overloaded;
    record_at_submit(resp);
    if (*shared_cb) (*shared_cb)(std::move(resp));
  }
}

std::vector<std::future<ParseResponse>> ParseService::submit_batch(
    std::vector<ParseRequest> reqs) {
  if (!opt_.enable_batching) {
    std::vector<std::future<ParseResponse>> futures;
    futures.reserve(reqs.size());
    for (auto& r : reqs) futures.push_back(submit(std::move(r)));
    return futures;
  }

  // SoA grouping: walk the batch in input order; an eligible request
  // joins the group of its resolved (grammar snapshot, length), groups
  // dispatch in first-appearance order sliced into kLanes-sized
  // chunks.  Deterministic by construction — no timing enters the
  // grouping decision.  Ineligible requests (non-Serial backend, raw
  // words needing a lexicon, a deadline, an empty sentence) take the
  // ordinary per-request path; the future at their input index is
  // satisfied the same way either way.
  const auto submitted = clock::now();
  std::vector<std::future<ParseResponse>> futures(reqs.size());
  struct Group {
    const cdg::Grammar* grammar;
    std::size_t length;
    std::vector<BatchItem> items;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ParseRequest& r = reqs[i];
    const bool eligible = r.backend == engine::Backend::Serial &&
                          r.words.empty() && r.deadline.count() == 0 &&
                          r.sentence.size() > 0;
    if (!eligible) {
      futures[i] = submit(std::move(r));
      continue;
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++submitted_;
    }
    std::promise<ParseResponse> promise;
    futures[i] = promise.get_future();
    GrammarSnapshot snap;
    std::shared_ptr<TenantState> tenant;
    ParseResponse resp;
    if (!admit(r, snap, tenant, resp)) {
      record_at_submit(resp);
      promise.set_value(std::move(resp));
      continue;
    }
    const cdg::Grammar* g = &snap->grammar();
    const std::size_t len = r.sentence.size();
    Group* grp = nullptr;
    for (Group& cand : groups)
      if (cand.grammar == g && cand.length == len) {
        grp = &cand;
        break;
      }
    if (!grp) {
      groups.push_back({g, len, {}});
      grp = &groups.back();
    }
    grp->items.push_back(
        {std::move(r), std::move(snap), std::move(tenant), std::move(promise)});
  }

  const std::size_t min_lanes =
      std::max<std::size_t>(1, opt_.min_batch_lanes);
  for (Group& grp : groups) {
    for (std::size_t off = 0; off < grp.items.size();
         off += cdg::BatchParser::kLanes) {
      const std::size_t end =
          std::min(off + cdg::BatchParser::kLanes, grp.items.size());
      if (end - off < min_lanes) {
        // Thin tail chunk: a lockstep sweep costs nearly the same at
        // any fill, so below the threshold the per-request path wins.
        for (std::size_t k = off; k < end; ++k) {
          BatchItem& it = grp.items[k];
          const std::uint64_t epoch = it.snap->epoch();
          auto promise =
              std::make_shared<std::promise<ParseResponse>>(
                  std::move(it.promise));
          auto job = [this, req = std::move(it.req),
                      snap = std::move(it.snap), tenant = it.tenant,
                      submitted, promise](int worker) mutable {
            run_request(worker, std::move(req), std::move(snap),
                        std::move(tenant), submitted, std::move(*promise),
                        nullptr);
          };
          const bool posted = opt_.shed_load
                                  ? pool_->try_post(std::move(job))
                                  : pool_->post(std::move(job));
          if (!posted) {
            it.tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
            ParseResponse resp;
            resp.grammar_epoch = epoch;
            resp.status = pool_->shutting_down()
                              ? RequestStatus::ShuttingDown
                              : RequestStatus::Overloaded;
            record_at_submit(resp);
            promise->set_value(std::move(resp));
          }
        }
        continue;
      }
      // The chunk rides in a shared_ptr: the pool's job type requires a
      // copyable callable, and promises are move-only.
      auto chunk = std::make_shared<std::vector<BatchItem>>(
          std::make_move_iterator(grp.items.begin() +
                                  static_cast<std::ptrdiff_t>(off)),
          std::make_move_iterator(grp.items.begin() +
                                  static_cast<std::ptrdiff_t>(end)));
      auto job = [this, chunk, submitted](int worker) mutable {
        run_batch(worker, std::move(*chunk), submitted);
      };
      const bool posted = opt_.shed_load ? pool_->try_post(std::move(job))
                                         : pool_->post(std::move(job));
      if (!posted) {
        for (BatchItem& it : *chunk) {
          it.tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
          ParseResponse resp;
          resp.grammar_epoch = it.snap->epoch();
          resp.status = pool_->shutting_down() ? RequestStatus::ShuttingDown
                                               : RequestStatus::Overloaded;
          record_at_submit(resp);
          it.promise.set_value(std::move(resp));
        }
      }
    }
  }
  return futures;
}

void ParseService::run_batch(int worker, std::vector<BatchItem> items,
                             clock::time_point submitted) {
  const auto dequeued = clock::now();
  // One batch-root span per executed batch (the lane count is the
  // occupancy a trace analysis reads off).
  obs::Span batch_span("serve.batch", "serve");
  GrammarSnapshot& snap = items.front().snap;
  WorkerScratch& ws = scratch_[static_cast<std::size_t>(worker)];
  // Pin the snapshot and retire older epochs of the tenant — same
  // contract as run_request; the pooled BatchParser references the
  // grammar too.
  for (auto it = ws.pinned.begin(); it != ws.pinned.end();) {
    if (it->second->tenant_id() == snap->tenant_id() &&
        it->second->epoch() < snap->epoch()) {
      ws.networks.purge(it->first);
      ws.batchers.erase(it->first);
      it = ws.pinned.erase(it);
    } else {
      ++it;
    }
  }
  ws.pinned[&snap->grammar()] = snap;
  cdg::BatchParser& parser =
      ws.batchers.try_emplace(&snap->grammar(), snap->grammar())
          .first->second;

  std::vector<cdg::Sentence> sentences;
  sentences.reserve(items.size());
  bool capture_any = false;
  for (const BatchItem& it : items) {
    sentences.push_back(it.req.sentence);
    capture_any |= it.req.capture_domains;
  }

  // A throwing batch faults every lane: the interleaved arena is one
  // shared execution, so per-lane recovery would re-run sequentially —
  // callers that need fault isolation submit without batching.
  std::vector<engine::BackendRun> runs;
  std::string error;
  try {
    runs = engine::run_backend_batch(parser, sentences, capture_any);
  } catch (const std::exception& e) {
    error = e.what();
  }

  batches_total_->inc();
  batched_requests_total_->inc(static_cast<std::uint64_t>(items.size()));
  {
    std::lock_guard lock(stats_mutex_);
    ++batches_;
    batched_requests_ += items.size();
  }

  const double queue_seconds =
      std::chrono::duration<double>(dequeued - submitted).count();
  const double parse_seconds =
      std::chrono::duration<double>(clock::now() - dequeued).count();
  for (std::size_t k = 0; k < items.size(); ++k) {
    BatchItem& it = items[k];
    it.tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
    ParseResponse resp;
    resp.worker = worker;
    resp.grammar_epoch = it.snap->epoch();
    resp.served_backend = engine::Backend::Serial;
    resp.queue_seconds = queue_seconds;
    resp.parse_seconds = parse_seconds;
    std::vector<Attempt> attempts;
    if (!error.empty()) {
      resp.status = RequestStatus::Faulted;
      resp.error = error;
      engine::BackendStats d;
      d.requests = 1;
      d.faulted = 1;
      attempts.push_back({engine::Backend::Serial, d});
    } else {
      engine::BackendRun& run = runs[k];
      resp.status = RequestStatus::Ok;
      resp.accepted = run.accepted;
      resp.alive_role_values = run.alive_role_values;
      resp.domains_hash = run.domains_hash;
      if (it.req.capture_domains) resp.domains = std::move(run.domains);
      attempts.push_back({engine::Backend::Serial, run.stats});
    }
    record(resp, attempts);
    it.promise.set_value(std::move(resp));
  }
  if (batch_span.active()) {
    batch_span.arg("lanes", static_cast<std::int64_t>(items.size()));
    batch_span.arg("n", static_cast<std::int64_t>(sentences[0].size()));
    batch_span.arg("tenant", static_cast<std::int64_t>(snap->tenant_id()));
    batch_span.arg("faulted",
                   static_cast<std::int64_t>(error.empty() ? 0 : 1));
  }
}

std::vector<ParseResponse> ParseService::parse_batch(
    std::vector<ParseRequest> reqs) {
  auto futures = submit_batch(std::move(reqs));
  std::vector<ParseResponse> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

void ParseService::run_request(int worker, ParseRequest req,
                               GrammarSnapshot snap,
                               std::shared_ptr<TenantState> tenant,
                               clock::time_point submitted,
                               std::promise<ParseResponse> promise,
                               Callback cb) {
  const auto dequeued = clock::now();
  // Request-root span: when a TraceSession is active, every serviced
  // request contributes one `serve.request` span enclosing its
  // `backend.*` envelope (and, through it, the engine phase spans), so
  // the offline analyzer (src/analyze) can reconstruct the
  // request -> envelope -> phase graph and attribute queue wait vs
  // parse time per request.  Phase-grained: exactly one span per
  // request, inactive-session cost one relaxed load.
  obs::Span request_span("serve.request", "serve");
  ParseResponse resp;
  resp.worker = worker;
  resp.queue_seconds =
      std::chrono::duration<double>(dequeued - submitted).count();
  resp.grammar_epoch = snap->epoch();

  const bool has_deadline = req.deadline.count() > 0;
  const auto deadline_at = submitted + req.deadline;
  std::vector<Attempt> attempts;

  // One engine attempt; classifies the outcome at the worker boundary
  // so no exception escapes onto the pool thread.
  enum class Outcome { kOk, kCancelled, kStall, kFault, kBad };
  struct Once {
    Outcome kind = Outcome::kOk;
    engine::BackendRun run;
    std::string error;
  };
  resil::Watchdog::Slot* slot =
      watchdog_ ? &watchdog_->begin(static_cast<std::size_t>(worker))
                : nullptr;
  auto run_once = [&](engine::Backend backend) -> Once {
    Once o;
    if (slot) slot->cancel.store(false, std::memory_order_relaxed);
    cdg::CancelFn cancel;
    if (has_deadline && slot)
      cancel = [deadline_at, slot] {
        return slot->cancel.load(std::memory_order_relaxed) ||
               clock::now() >= deadline_at;
      };
    else if (has_deadline)
      cancel = [deadline_at] { return clock::now() >= deadline_at; };
    else if (slot)
      cancel = [slot] {
        return slot->cancel.load(std::memory_order_relaxed);
      };
    WorkerScratch& scratch = scratch_[static_cast<std::size_t>(worker)];
    try {
      o.run = engine::run_backend(snap->engines(), backend, req.sentence,
                                  &scratch.networks, cancel,
                                  req.capture_domains);
      if (o.run.cancelled) {
        // Attribute the abort: watchdog stall vs. deadline expiry.
        const bool stalled =
            slot && slot->cancel.load(std::memory_order_relaxed) &&
            !(has_deadline && clock::now() >= deadline_at);
        o.kind = stalled ? Outcome::kStall : Outcome::kCancelled;
      }
    } catch (const resil::InjectedFault& e) {
      o.kind = Outcome::kFault;
      o.error = e.what();
    } catch (const std::invalid_argument& e) {
      o.kind = Outcome::kBad;
      o.error = e.what();
    } catch (const std::out_of_range& e) {
      o.kind = Outcome::kBad;
      o.error = e.what();
    } catch (const std::exception& e) {
      o.kind = Outcome::kFault;
      o.error = e.what();
    }
    return o;
  };
  // Engine-stats delta for one attempt.  A throwing engine never filled
  // its counters; charge the request and mark it faulted so the engine
  // family stays exactly-once too.
  auto delta_of = [](const Once& o) {
    engine::BackendStats d = o.run.stats;
    if (d.requests == 0) d.requests = 1;
    if (o.kind == Outcome::kFault || o.kind == Outcome::kStall) {
      d.faulted = 1;
      d.cancelled = 0;
      d.accepted = 0;
    }
    return d;
  };

  bool rerouted = false;
  std::uint64_t local_breaker_trips = 0;
  std::uint64_t local_fallback_retries = 0;
  std::uint64_t local_fallback_ok = 0;
  std::uint64_t local_stalls = 0;

  // Span arg: which cache path served the request.
  // 0 = cache disabled/not consulted, 1 = miss (single-flight leader),
  // 2 = hit, 3 = coalesced, 4 = domain-upgrade bypass, 5 = coalesced
  // wait expired; 6/7/8 = the same hit/coalesced/wait-expired outcomes
  // on the idempotency key instead of the sentence hash.
  std::int64_t cache_code = 0;
  bool served_from_cache = false;
  ResultCache::Ticket ticket;  // abandons on scope exit unless filled
  bool bypass_upgrade = false;
  ResultCache::Key ckey;
  // Idempotency single flight: a retransmit of the same logical
  // request (same non-zero key) must not double-execute.  Held and
  // filled like the content-cache ticket, but keyed on request
  // identity, so it dedups retries whose responses were lost in
  // flight — something the sentence-hash cache can't promise when
  // caching is disabled or the entry was evicted.
  ResultCache::Ticket iticket;
  bool idem_bypass = false;
  ResultCache::Key ikey;

  Once once;
  if (has_deadline && dequeued >= deadline_at) {
    // Expired while queued: answer without parsing.  Counted as one
    // cancelled engine request so the engine family accounts it too.
    once.kind = Outcome::kCancelled;
    engine::BackendStats d;
    d.requests = 1;
    d.cancelled = 1;
    attempts.push_back({req.backend, d});
    resp.served_backend = req.backend;
  } else {
    // Raw-word requests are tagged here, inside the worker boundary,
    // so an unknown word degrades to BadRequest instead of throwing on
    // a pool thread.  The resolved bundle's lexicon wins; the service
    // fallback covers borrowed bundles published without one.
    bool tagged_ok = true;
    if (!req.words.empty()) {
      const cdg::Lexicon* lexicon =
          snap->lexicon() ? snap->lexicon() : opt_.lexicon;
      if (lexicon == nullptr) {
        once.kind = Outcome::kBad;
        once.error = "no lexicon configured for raw-word requests";
        tagged_ok = false;
      } else {
        try {
          req.sentence = lexicon->tag(req.words);
        } catch (const std::out_of_range& e) {
          once.kind = Outcome::kBad;
          once.error = e.what();
          tagged_ok = false;
        } catch (const std::invalid_argument& e) {
          once.kind = Outcome::kBad;
          once.error = e.what();
          tagged_ok = false;
        }
      }
    }
    bool run_engine = tagged_ok;
    if (tagged_ok && idem_cache_ && req.idempotency_key != 0) {
      ikey = {snap->tenant_id(), snap->epoch(), req.idempotency_key};
      ResultCache::LookupResult lookup = idem_cache_->acquire(
          ikey, req.capture_domains,
          has_deadline ? deadline_at : clock::time_point::max());
      switch (lookup.outcome) {
        case ResultCache::Outcome::Hit:
        case ResultCache::Outcome::Coalesced:
          // A retry of an already-executed request: replay the
          // memoized response instead of parsing again.
          resp.status = RequestStatus::Ok;
          resp.accepted = lookup.payload->accepted;
          resp.alive_role_values = lookup.payload->alive_role_values;
          resp.domains_hash = lookup.payload->domains_hash;
          if (req.capture_domains && lookup.payload->has_domains)
            resp.domains = lookup.payload->domains;
          resp.served_backend = lookup.payload->parsed_on;
          resp.cached = true;
          resp.coalesced =
              lookup.outcome == ResultCache::Outcome::Coalesced;
          served_from_cache = true;
          run_engine = false;
          cache_code = resp.coalesced ? 7 : 6;
          break;
        case ResultCache::Outcome::WaitExpired:
          once.kind = Outcome::kCancelled;
          {
            engine::BackendStats d;
            d.requests = 1;
            d.cancelled = 1;
            attempts.push_back({req.backend, d});
          }
          resp.served_backend = req.backend;
          run_engine = false;
          cache_code = 8;
          break;
        case ResultCache::Outcome::MissLeader:
          iticket = std::move(lookup.ticket);
          break;
        case ResultCache::Outcome::Bypass:
          idem_bypass = true;
          break;
      }
    }
    if (run_engine && cache_) {
      // Cache transaction.  The key pins (tenant, epoch, tagged
      // sentence); by the engines' determinism contract the payload is
      // bit-identical to the parse this request would have run.
      ckey = {snap->tenant_id(), snap->epoch(),
              engine::hash_sentence(req.sentence)};
      ResultCache::LookupResult lookup = cache_->acquire(
          ckey, req.capture_domains,
          has_deadline ? deadline_at : clock::time_point::max());
      switch (lookup.outcome) {
        case ResultCache::Outcome::Hit:
        case ResultCache::Outcome::Coalesced:
          resp.status = RequestStatus::Ok;
          resp.accepted = lookup.payload->accepted;
          resp.alive_role_values = lookup.payload->alive_role_values;
          resp.domains_hash = lookup.payload->domains_hash;
          if (req.capture_domains && lookup.payload->has_domains)
            resp.domains = lookup.payload->domains;
          resp.served_backend = lookup.payload->parsed_on;
          resp.cached = true;
          resp.coalesced =
              lookup.outcome == ResultCache::Outcome::Coalesced;
          served_from_cache = true;
          run_engine = false;
          cache_code = resp.coalesced ? 3 : 2;
          break;
        case ResultCache::Outcome::WaitExpired:
          // Deadline expired while coalesced on the leader's parse:
          // same accounting as a queue-expired request.
          once.kind = Outcome::kCancelled;
          {
            engine::BackendStats d;
            d.requests = 1;
            d.cancelled = 1;
            attempts.push_back({req.backend, d});
          }
          resp.served_backend = req.backend;
          run_engine = false;
          cache_code = 5;
          break;
        case ResultCache::Outcome::MissLeader:
          ticket = std::move(lookup.ticket);
          cache_code = 1;
          break;
        case ResultCache::Outcome::Bypass:
          bypass_upgrade = true;
          cache_code = 4;
          break;
      }
    }
    if (run_engine) {
      // Pin the snapshot in this worker's scratch: pooled networks
      // reference their grammar, so the bundle must stay alive while
      // they do.  A newer epoch of the same tenant retires the old
      // epoch's networks (and releases its pin).
      WorkerScratch& ws = scratch_[static_cast<std::size_t>(worker)];
      for (auto it = ws.pinned.begin(); it != ws.pinned.end();) {
        if (it->second->tenant_id() == snap->tenant_id() &&
            it->second->epoch() < snap->epoch()) {
          ws.networks.purge(it->first);
          ws.batchers.erase(it->first);
          it = ws.pinned.erase(it);
        } else {
          ++it;
        }
      }
      ws.pinned[&snap->grammar()] = snap;

      engine::Backend target = req.backend;
      // Open breaker: don't even try the sick backend, go straight to
      // the degradation target.
      if (opt_.enable_breaker && target != engine::Backend::Serial &&
          !breakers_[static_cast<std::size_t>(target)].allow()) {
        target = engine::Backend::Serial;
        rerouted = true;
      }
      once = run_once(target);
      attempts.push_back({target, delta_of(once)});
      resp.served_backend = target;
      // Breaker bookkeeping for the backend that actually ran (only
      // non-Serial backends are degradable sources).
      if (opt_.enable_breaker && target != engine::Backend::Serial) {
        auto& breaker = breakers_[static_cast<std::size_t>(target)];
        if (once.kind == Outcome::kFault || once.kind == Outcome::kStall) {
          if (breaker.record_failure()) ++local_breaker_trips;
        } else if (once.kind == Outcome::kOk) {
          breaker.record_success();
        }
        // kCancelled is the caller's deadline, kBad is the caller's
        // input: neither says anything about backend health.
      }
      // Retry-with-fallback: a faulted or stalled parse on a parallel
      // backend is re-run once on Serial.  Same constraint network,
      // same fixpoint — the response is bit-identical, only degraded.
      if ((once.kind == Outcome::kFault || once.kind == Outcome::kStall) &&
          target != engine::Backend::Serial && opt_.retry_serial &&
          !(has_deadline && clock::now() >= deadline_at)) {
        if (once.kind == Outcome::kStall) ++local_stalls;
        ++local_fallback_retries;
        once = run_once(engine::Backend::Serial);
        attempts.push_back({engine::Backend::Serial, delta_of(once)});
        resp.served_backend = engine::Backend::Serial;
        resp.degraded = true;
        if (once.kind == Outcome::kOk) ++local_fallback_ok;
      } else if (once.kind == Outcome::kStall) {
        ++local_stalls;
      }
      if (rerouted) resp.degraded = true;

      // Publish into the cache: only Ok results are memoizable (a
      // timeout or fault is a property of this execution, not of the
      // (grammar, sentence) function).  A leader that failed abandons
      // its ticket, waking coalesced waiters to retry.
      if (once.kind == Outcome::kOk && (ticket || bypass_upgrade)) {
        ResultCache::Payload payload;
        payload.accepted = once.run.accepted;
        payload.alive_role_values = once.run.alive_role_values;
        payload.domains_hash = once.run.domains_hash;
        payload.has_domains = req.capture_domains;
        if (req.capture_domains) payload.domains = once.run.domains;
        payload.parsed_on = resp.served_backend;
        if (ticket)
          ticket.fill(std::move(payload));
        else
          cache_->put(ckey, std::move(payload));
      } else if (ticket) {
        ticket.abandon();
      }
    }
  }
  if (slot) watchdog_->end(static_cast<std::size_t>(worker));
  tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);

  if (!served_from_cache) {
    switch (once.kind) {
      case Outcome::kOk:
        resp.status = RequestStatus::Ok;
        resp.accepted = once.run.accepted;
        resp.alive_role_values = once.run.alive_role_values;
        resp.domains_hash = once.run.domains_hash;
        resp.domains = std::move(once.run.domains);
        break;
      case Outcome::kCancelled:
        resp.status = RequestStatus::Timeout;
        break;
      case Outcome::kStall:
        resp.status = RequestStatus::Faulted;
        resp.error = once.error.empty() ? "watchdog: stuck worker cancelled"
                                        : once.error;
        break;
      case Outcome::kFault:
        resp.status = RequestStatus::Faulted;
        resp.error = once.error;
        break;
      case Outcome::kBad:
        resp.status = RequestStatus::BadRequest;
        resp.error = once.error;
        break;
    }
  }
  // Publish under the idempotency key: only Ok results are memoized (a
  // retry of a failed execution should re-execute), whether the answer
  // came from the engine or the content cache.  An abandoned ticket
  // wakes coalesced retries to elect a new leader.
  if (iticket || idem_bypass) {
    if (resp.status == RequestStatus::Ok) {
      ResultCache::Payload p;
      p.accepted = resp.accepted;
      p.alive_role_values = resp.alive_role_values;
      p.domains_hash = resp.domains_hash;
      p.has_domains = req.capture_domains;
      if (req.capture_domains) p.domains = resp.domains;
      p.parsed_on = resp.served_backend;
      if (iticket)
        iticket.fill(std::move(p));
      else
        idem_cache_->put(ikey, std::move(p));
    } else if (iticket) {
      iticket.abandon();
    }
  }
  resp.parse_seconds =
      std::chrono::duration<double>(clock::now() - dequeued).count();
  if (request_span.active()) {
    request_span.arg("queue_us",
                     static_cast<std::int64_t>(resp.queue_seconds * 1e6));
    request_span.arg("n", static_cast<std::int64_t>(req.sentence.size()));
    request_span.arg("status", static_cast<std::int64_t>(resp.status));
    request_span.arg("accepted",
                     static_cast<std::int64_t>(resp.accepted ? 1 : 0));
    request_span.arg("degraded",
                     static_cast<std::int64_t>(resp.degraded ? 1 : 0));
    request_span.arg("tenant",
                     static_cast<std::int64_t>(snap->tenant_id()));
    request_span.arg("epoch",
                     static_cast<std::int64_t>(resp.grammar_epoch));
    request_span.arg("cache", cache_code);
  }

  // Resilience counters (registry first — lock-free — then the struct
  // counters under the stats mutex inside record()).
  if (rerouted) breaker_rerouted_total_->inc();
  breaker_trips_total_->inc(local_breaker_trips);
  fallback_retries_total_->inc(local_fallback_retries);
  fallback_ok_total_->inc(local_fallback_ok);
  watchdog_stalls_total_->inc(local_stalls);
  {
    std::lock_guard lock(stats_mutex_);
    if (rerouted) ++breaker_rerouted_;
    fallback_retries_ += local_fallback_retries;
    fallback_ok_ += local_fallback_ok;
    watchdog_stalls_ += local_stalls;
  }

  record(resp, attempts);
  if (cb)
    cb(std::move(resp));
  else
    promise.set_value(std::move(resp));
}

void ParseService::record_at_submit(const ParseResponse& resp) {
  serve_status_[static_cast<std::size_t>(resp.status)]->inc();
  std::lock_guard lock(stats_mutex_);
  switch (resp.status) {
    case RequestStatus::Timeout:
      ++timeouts_;
      timeouts_total_->inc();
      break;
    case RequestStatus::ShuttingDown:
      ++rejected_at_submit_;
      rejected_at_submit_total_->inc();
      break;
    case RequestStatus::BadRequest:
      ++bad_requests_;
      break;
    case RequestStatus::Overloaded:
      ++overloaded_;
      break;
    default:
      break;
  }
}

void ParseService::record(const ParseResponse& resp,
                          const std::vector<Attempt>& attempts) {
  const double total_seconds = resp.queue_seconds + resp.parse_seconds;
  // Registry updates first: lock-free, outside the stats mutex.  The
  // request's wall latency is attributed to the backend that served it.
  for (const Attempt& a : attempts)
    publisher_.publish(a.backend, a.delta,
                       a.backend == resp.served_backend ? total_seconds : 0.0);
  serve_status_[static_cast<std::size_t>(resp.status)]->inc();
  if (resp.status == RequestStatus::Timeout) timeouts_total_->inc();
  queue_wait_seconds_->observe(resp.queue_seconds);
  queue_depth_gauge_->set(static_cast<double>(pool_->queue_depth()));
  std::lock_guard lock(stats_mutex_);
  ++completed_;
  if (resp.accepted) ++accepted_;
  switch (resp.status) {
    case RequestStatus::Timeout:
      ++timeouts_;
      break;
    case RequestStatus::BadRequest:
      ++bad_requests_;
      break;
    case RequestStatus::Faulted:
      ++faulted_;
      break;
    default:
      break;
  }
  latency_.add(total_seconds);
  quantiles_.add(total_seconds);
  for (const Attempt& a : attempts)
    backend_stats_[static_cast<std::size_t>(a.backend)] += a.delta;
}

std::string ParseService::metrics_text() const {
  queue_depth_gauge_->set(static_cast<double>(pool_->queue_depth()));
  return opt_.metrics->scrape();
}

ServiceStats ParseService::stats() const {
  ServiceStats s;
  s.elapsed_seconds =
      std::chrono::duration<double>(clock::now() - start_).count();
  s.queue_depth = pool_->queue_depth();
  s.threads = pool_->num_threads();
  s.workers = pool_->worker_stats();
  if (cache_) s.cache = cache_->stats();
  if (idem_cache_) s.idempotency = idem_cache_->stats();
  std::uint64_t trips = 0;
  for (const auto& b : breakers_) trips += b.trips();
  std::lock_guard lock(stats_mutex_);
  s.submitted = submitted_;
  s.completed = completed_;
  s.accepted = accepted_;
  s.timeouts = timeouts_;
  s.rejected_at_submit = rejected_at_submit_;
  s.bad_requests = bad_requests_;
  s.overloaded = overloaded_;
  s.faulted = faulted_;
  s.fallback_retries = fallback_retries_;
  s.fallback_ok = fallback_ok_;
  s.breaker_trips = trips;
  s.breaker_rerouted = breaker_rerouted_;
  s.watchdog_stalls = watchdog_stalls_;
  s.batches = batches_;
  s.batched_requests = batched_requests_;
  s.throughput_sps =
      s.elapsed_seconds > 0
          ? static_cast<double>(completed_) / s.elapsed_seconds
          : 0.0;
  s.latency_mean_ms = latency_.mean() * 1e3;
  s.latency_max_ms = latency_.max() * 1e3;
  s.latency_p50_ms = quantiles_.p50() * 1e3;
  s.latency_p95_ms = quantiles_.p95() * 1e3;
  s.latency_p99_ms = quantiles_.p99() * 1e3;
  for (std::size_t i = 0; i < engine::kNumBackends; ++i)
    s.backends[i] = backend_stats_[i];
  return s;
}

}  // namespace parsec::serve
