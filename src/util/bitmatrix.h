// Dense square bit matrix used for CDG arc matrices.
//
// An arc matrix records, for a pair of roles, which pairs of role values
// may legally coexist (paper §1.4).  Rows index the first role's values,
// columns the second role's.  The MasPar implementation never shrinks a
// matrix; eliminated role values have their row/column zeroed (design
// decision 4, §2.2.1), and this type mirrors that.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "util/bitset.h"

namespace parsec::util {

class BitMatrix {
 public:
  using Word = DynBitset::Word;
  static constexpr std::size_t kWordBits = DynBitset::kWordBits;

  BitMatrix() = default;

  /// `rows` x `cols` matrix with every bit initialised to `value`.
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + kWordBits - 1) / kWordBits),
        data_(rows * words_per_row_, value ? ~Word{0} : Word{0}) {
    if (value) trim_rows();
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool test(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return (row_words(r)[c / kWordBits] >> (c % kWordBits)) & 1u;
  }

  void set(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] |= Word{1} << (c % kWordBits);
  }

  void reset(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] &= ~(Word{1} << (c % kWordBits));
  }

  void assign(std::size_t r, std::size_t c, bool v) {
    v ? set(r, c) : reset(r, c);
  }

  /// Clears every bit (shape unchanged, no reallocation).
  void reset_all() {
    for (Word& w : data_) w = 0;
  }

  void zero_row(std::size_t r) {
    Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i) w[i] = 0;
  }

  void zero_col(std::size_t c) {
    const std::size_t wi = c / kWordBits;
    const Word mask = ~(Word{1} << (c % kWordBits));
    for (std::size_t r = 0; r < rows_; ++r) row_words(r)[wi] &= mask;
  }

  /// True if row `r` has at least one set bit.
  bool row_any(std::size_t r) const {
    const Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i)
      if (w[i]) return true;
    return false;
  }

  /// True if row `r` has at least one set bit in a column allowed by `mask`.
  bool row_intersects(std::size_t r, const DynBitset& mask) const {
    assert(mask.size() == cols_);
    const Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i)
      if (w[i] & mask.word_at(i)) return true;
    return false;
  }

  /// True if column `c` has at least one set bit.
  bool col_any(std::size_t c) const {
    const std::size_t wi = c / kWordBits;
    const Word mask = Word{1} << (c % kWordBits);
    for (std::size_t r = 0; r < rows_; ++r)
      if (row_words(r)[wi] & mask) return true;
    return false;
  }

  /// True if column `c` has a set bit in a row allowed by `mask`.
  bool col_intersects(std::size_t c, const DynBitset& mask) const {
    assert(mask.size() == rows_);
    const std::size_t wi = c / kWordBits;
    const Word bit = Word{1} << (c % kWordBits);
    for (std::size_t r = 0; r < rows_; ++r)
      if ((row_words(r)[wi] & bit) && mask.test(r)) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (Word w : data_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  Word* row_words(std::size_t r) { return data_.data() + r * words_per_row_; }
  const Word* row_words(std::size_t r) const {
    return data_.data() + r * words_per_row_;
  }
  std::size_t words_per_row() const { return words_per_row_; }

 private:
  void trim_rows() {
    if (cols_ % kWordBits == 0 || words_per_row_ == 0) return;
    const Word mask = (Word{1} << (cols_ % kWordBits)) - 1;
    for (std::size_t r = 0; r < rows_; ++r)
      row_words(r)[words_per_row_ - 1] &= mask;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<Word> data_;
};

}  // namespace parsec::util
