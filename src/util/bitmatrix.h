// Dense square bit matrix used for CDG arc matrices.
//
// An arc matrix records, for a pair of roles, which pairs of role values
// may legally coexist (paper §1.4).  Rows index the first role's values,
// columns the second role's.  The MasPar implementation never shrinks a
// matrix; eliminated role values have their row/column zeroed (design
// decision 4, §2.2.1), and this type mirrors that.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "util/bitset.h"

namespace parsec::util {

class BitMatrix {
 public:
  using Word = DynBitset::Word;
  static constexpr std::size_t kWordBits = DynBitset::kWordBits;

  BitMatrix() = default;

  /// `rows` x `cols` matrix with every bit initialised to `value`.
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + kWordBits - 1) / kWordBits),
        data_(rows * words_per_row_, value ? ~Word{0} : Word{0}) {
    if (value) trim_rows();
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool test(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return (row_words(r)[c / kWordBits] >> (c % kWordBits)) & 1u;
  }

  void set(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] |= Word{1} << (c % kWordBits);
  }

  void reset(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] &= ~(Word{1} << (c % kWordBits));
  }

  void assign(std::size_t r, std::size_t c, bool v) {
    v ? set(r, c) : reset(r, c);
  }

  /// Clears every bit (shape unchanged, no reallocation).
  void reset_all() {
    for (Word& w : data_) w = 0;
  }

  void zero_row(std::size_t r) {
    Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i) w[i] = 0;
  }

  void zero_col(std::size_t c) {
    const std::size_t wi = c / kWordBits;
    const Word mask = ~(Word{1} << (c % kWordBits));
    for (std::size_t r = 0; r < rows_; ++r) row_words(r)[wi] &= mask;
  }

  /// True if row `r` has at least one set bit.
  bool row_any(std::size_t r) const {
    const Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i)
      if (w[i]) return true;
    return false;
  }

  /// True if row `r` has at least one set bit in a column allowed by `mask`.
  bool row_intersects(std::size_t r, const DynBitset& mask) const {
    assert(mask.size() == cols_);
    const Word* w = row_words(r);
    for (std::size_t i = 0; i < words_per_row_; ++i)
      if (w[i] & mask.word_at(i)) return true;
    return false;
  }

  /// True if column `c` has at least one set bit.
  bool col_any(std::size_t c) const {
    const std::size_t wi = c / kWordBits;
    const Word mask = Word{1} << (c % kWordBits);
    for (std::size_t r = 0; r < rows_; ++r)
      if (row_words(r)[wi] & mask) return true;
    return false;
  }

  /// True if column `c` has a set bit in a row allowed by `mask`.
  bool col_intersects(std::size_t c, const DynBitset& mask) const {
    assert(mask.size() == rows_);
    const std::size_t wi = c / kWordBits;
    const Word bit = Word{1} << (c % kWordBits);
    for (std::size_t r = 0; r < rows_; ++r)
      if ((row_words(r)[wi] & bit) && mask.test(r)) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (Word w : data_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  /// Set bits in row `r` (word-granular popcount; no per-bit probing).
  std::size_t row_count(std::size_t r) const {
    const Word* w = row_words(r);
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_per_row_; ++i)
      c += static_cast<std::size_t>(std::popcount(w[i]));
    return c;
  }

  /// Word-wise equality (shape + every storage word).
  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  Word* row_words(std::size_t r) { return data_.data() + r * words_per_row_; }
  const Word* row_words(std::size_t r) const {
    return data_.data() + r * words_per_row_;
  }
  std::size_t words_per_row() const { return words_per_row_; }

  /// Row `r` as a bit span (word-granular access to one role value's
  /// support bits).
  BitSpan row_span(std::size_t r) { return BitSpan(row_words(r), cols_); }
  ConstBitSpan row_span(std::size_t r) const {
    return ConstBitSpan(row_words(r), cols_);
  }

 private:
  void trim_rows() {
    if (cols_ % kWordBits == 0 || words_per_row_ == 0) return;
    const Word mask = (Word{1} << (cols_ % kWordBits)) - 1;
    for (std::size_t r = 0; r < rows_; ++r)
      row_words(r)[words_per_row_ - 1] &= mask;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<Word> data_;
};

// ---------------------------------------------------------------------
// Non-owning matrix views over word-aligned rows with a fixed stride.
//
// The arc matrices of a constraint network live back-to-back in one
// arena allocation (cdg::NetworkArena); a view binds (base, rows, cols,
// stride) to that storage and exposes the BitMatrix API.  All bit
// kernels (cdg/kernels.h) are written against these views, so the same
// inner loops serve every engine regardless of who owns the words.
// ---------------------------------------------------------------------

class ConstBitMatrixView {
 public:
  using Word = DynBitset::Word;
  static constexpr std::size_t kWordBits = DynBitset::kWordBits;

  ConstBitMatrixView() = default;
  ConstBitMatrixView(const Word* data, std::size_t rows, std::size_t cols,
                     std::size_t stride_words)
      : data_(data), rows_(rows), cols_(cols), stride_(stride_words) {}
  /// Implicit: a BitMatrix is viewable wherever a view is expected.
  ConstBitMatrixView(const BitMatrix& m)
      : data_(m.rows() ? m.row_words(0) : nullptr),
        rows_(m.rows()),
        cols_(m.cols()),
        stride_(m.words_per_row()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t words_per_row() const { return stride_; }

  bool test(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return (row_words(r)[c / kWordBits] >> (c % kWordBits)) & 1u;
  }

  bool row_any(std::size_t r) const {
    const Word* w = row_words(r);
    const std::size_t W = row_word_count();
    for (std::size_t i = 0; i < W; ++i)
      if (w[i]) return true;
    return false;
  }

  bool col_any(std::size_t c) const {
    const std::size_t wi = c / kWordBits;
    const Word mask = Word{1} << (c % kWordBits);
    for (std::size_t r = 0; r < rows_; ++r)
      if (row_words(r)[wi] & mask) return true;
    return false;
  }

  std::size_t row_count(std::size_t r) const {
    const Word* w = row_words(r);
    std::size_t c = 0;
    const std::size_t W = row_word_count();
    for (std::size_t i = 0; i < W; ++i)
      c += static_cast<std::size_t>(std::popcount(w[i]));
    return c;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::size_t r = 0; r < rows_; ++r) c += row_count(r);
    return c;
  }

  const Word* row_words(std::size_t r) const { return data_ + r * stride_; }
  ConstBitSpan row_span(std::size_t r) const {
    return ConstBitSpan(row_words(r), cols_);
  }

  /// Words that carry payload bits in a row (the stride may be larger).
  std::size_t row_word_count() const {
    return (cols_ + kWordBits - 1) / kWordBits;
  }

 protected:
  const Word* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Word-wise equality over the payload words of two equally-shaped
/// matrices (strides may differ).
inline bool operator==(const ConstBitMatrixView& a,
                       const ConstBitMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const std::size_t W = a.row_word_count();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const ConstBitMatrixView::Word* wa = a.row_words(r);
    const ConstBitMatrixView::Word* wb = b.row_words(r);
    for (std::size_t i = 0; i < W; ++i)
      if (wa[i] != wb[i]) return false;
  }
  return true;
}

class BitMatrixView : public ConstBitMatrixView {
 public:
  BitMatrixView() = default;
  BitMatrixView(Word* data, std::size_t rows, std::size_t cols,
                std::size_t stride_words)
      : ConstBitMatrixView(data, rows, cols, stride_words), mut_(data) {}

  void set(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] |= Word{1} << (c % kWordBits);
  }

  void reset(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    row_words(r)[c / kWordBits] &= ~(Word{1} << (c % kWordBits));
  }

  void assign(std::size_t r, std::size_t c, bool v) {
    v ? set(r, c) : reset(r, c);
  }

  void reset_all() {
    for (std::size_t r = 0; r < rows_; ++r) zero_row(r);
  }

  void zero_row(std::size_t r) {
    Word* w = row_words(r);
    const std::size_t W = row_word_count();
    for (std::size_t i = 0; i < W; ++i) w[i] = 0;
  }

  void zero_col(std::size_t c) {
    const std::size_t wi = c / kWordBits;
    const Word mask = ~(Word{1} << (c % kWordBits));
    for (std::size_t r = 0; r < rows_; ++r) row_words(r)[wi] &= mask;
  }

  using ConstBitMatrixView::row_span;
  using ConstBitMatrixView::row_words;
  Word* row_words(std::size_t r) { return mut_ + r * stride_; }
  BitSpan row_span(std::size_t r) { return BitSpan(row_words(r), cols_); }

 private:
  Word* mut_ = nullptr;
};

}  // namespace parsec::util
