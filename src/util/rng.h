// Deterministic, seedable RNG for workload generation.
//
// Benchmarks and property tests must be reproducible across runs and
// hosts, so everything random in this repository flows through this
// splitmix64-based generator rather than std::random_device.
#pragma once

#include <cstdint>
#include <cassert>
#include <cstddef>

namespace parsec::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift (Lemire); bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Picks a uniformly random element of a non-empty container.
  template <typename C>
  const auto& pick(const C& c) {
    assert(!c.empty());
    return c[next_below(c.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace parsec::util
