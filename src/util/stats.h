// Small statistics accumulators used by the benchmark harness and the
// parse service.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace parsec::util {

/// Welford accumulator: mean/stddev/min/max without storing samples.
class Stats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-storing quantile estimator (serve::ServiceStats latency
/// percentiles).  Stores every sample; quantiles sort lazily on read.
/// Not thread-safe — callers serialize access.
class Quantiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// Quantile `q` in [0, 1] by linear interpolation between order
  /// statistics; 0 when empty.
  double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  // quantile() is logically const; sorting is a cache refresh.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace parsec::util
