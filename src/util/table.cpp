#include "util/table.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace parsec::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-' &&
               c != 'x') {
      return false;
    }
  }
  return digit;
}

}  // namespace

std::string format_value(double v) {
  if (std::isnan(v)) return "-";
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  if (std::fabs(v) >= 1e6 || (v != 0 && std::fabs(v) < 1e-4)) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string Table::format_number(double v) { return format_value(v); }

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && row[c] != "-" && !looks_numeric(row[c]))
        numeric[c] = false;
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) os << "  ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (numeric[c]) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace parsec::util
