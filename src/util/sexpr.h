// Minimal s-expression reader.
//
// CDG constraints are written in the paper's Lisp-ish surface syntax:
//
//   (if (and (eq (cat (word (pos x))) verb)
//            (eq (role x) governor))
//       (and (eq (lab x) ROOT) (eq (mod x) nil)))
//
// This reader turns such text into a tree of Sexpr nodes (atoms and
// lists).  Semantics live in cdg/constraint_parser; this layer only
// handles lexing/nesting and reports positions for error messages.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace parsec::util {

struct Sexpr {
  enum class Kind { Atom, List };

  Kind kind = Kind::Atom;
  std::string atom;            // valid when kind == Atom
  std::vector<Sexpr> items;    // valid when kind == List
  int line = 0;                // 1-based source line of the first token
  int col = 0;                 // 1-based source column

  bool is_atom() const { return kind == Kind::Atom; }
  bool is_list() const { return kind == Kind::List; }
  std::size_t size() const { return items.size(); }
  const Sexpr& operator[](std::size_t i) const { return items[i]; }

  /// True if this is an atom equal to `s` (case-sensitive).
  bool is(std::string_view s) const { return is_atom() && atom == s; }

  /// Renders back to text (single line); handy in error messages and tests.
  std::string to_string() const;
};

/// Error thrown on malformed input, with 1-based line/col.
struct SexprError : std::runtime_error {
  SexprError(const std::string& msg, int line, int col);
  int line;
  int col;
};

/// Parses exactly one s-expression; trailing input is an error.
Sexpr parse_sexpr(std::string_view text);

/// Parses a whole file worth of s-expressions.  Comments run from ';' to
/// end of line.
std::vector<Sexpr> parse_sexprs(std::string_view text);

}  // namespace parsec::util
