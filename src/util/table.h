// Aligned ASCII table printer for the benchmark harness.
//
// Every bench binary prints the paper's reported values next to our
// measured values in one of these tables (DESIGN.md §4).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace parsec::util {

class Table {
 public:
  /// `headers` defines the column count; every row must match it.
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  /// Renders with a header rule and column alignment (numbers right,
  /// text left — detected per column from the data).
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return format_number(static_cast<double>(v));
  }
  static std::string format_number(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with engineering-style precision: integers exactly,
/// small reals with 3 significant decimals.
std::string format_value(double v);

}  // namespace parsec::util
