#include "util/sexpr.h"

#include <cctype>

namespace parsec::util {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  struct Token {
    enum class Kind { LParen, RParen, Atom, End };
    Kind kind;
    std::string value;
    int line;
    int col;
  };

  Token next() {
    skip_ws_and_comments();
    const int line = line_, col = col_;
    if (pos_ >= text_.size()) return {Token::Kind::End, "", line, col};
    char c = text_[pos_];
    if (c == '(') {
      advance();
      return {Token::Kind::LParen, "(", line, col};
    }
    if (c == ')') {
      advance();
      return {Token::Kind::RParen, ")", line, col};
    }
    std::string atom;
    while (pos_ < text_.size()) {
      c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')' || c == ';')
        break;
      atom.push_back(c);
      advance();
    }
    return {Token::Kind::Atom, atom, line, col};
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

Sexpr parse_one(Lexer& lex, const Lexer::Token& tok) {
  using K = Lexer::Token::Kind;
  switch (tok.kind) {
    case K::Atom: {
      Sexpr s;
      s.kind = Sexpr::Kind::Atom;
      s.atom = tok.value;
      s.line = tok.line;
      s.col = tok.col;
      return s;
    }
    case K::LParen: {
      Sexpr s;
      s.kind = Sexpr::Kind::List;
      s.line = tok.line;
      s.col = tok.col;
      while (true) {
        Lexer::Token t = lex.next();
        if (t.kind == K::RParen) return s;
        if (t.kind == K::End)
          throw SexprError("unterminated list", tok.line, tok.col);
        s.items.push_back(parse_one(lex, t));
      }
    }
    case K::RParen:
      throw SexprError("unexpected ')'", tok.line, tok.col);
    case K::End:
      throw SexprError("unexpected end of input", tok.line, tok.col);
  }
  throw SexprError("unreachable", tok.line, tok.col);
}

}  // namespace

SexprError::SexprError(const std::string& msg, int line_in, int col_in)
    : std::runtime_error(msg + " at " + std::to_string(line_in) + ":" +
                         std::to_string(col_in)),
      line(line_in),
      col(col_in) {}

std::string Sexpr::to_string() const {
  if (is_atom()) return atom;
  std::string out = "(";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ' ';
    out += items[i].to_string();
  }
  out += ')';
  return out;
}

Sexpr parse_sexpr(std::string_view text) {
  Lexer lex(text);
  Lexer::Token t = lex.next();
  Sexpr s = parse_one(lex, t);
  Lexer::Token rest = lex.next();
  if (rest.kind != Lexer::Token::Kind::End)
    throw SexprError("trailing input after s-expression", rest.line, rest.col);
  return s;
}

std::vector<Sexpr> parse_sexprs(std::string_view text) {
  Lexer lex(text);
  std::vector<Sexpr> out;
  while (true) {
    Lexer::Token t = lex.next();
    if (t.kind == Lexer::Token::Kind::End) return out;
    out.push_back(parse_one(lex, t));
  }
}

}  // namespace parsec::util
