// Dynamic bitset tuned for the constraint-network inner loops.
//
// The CDG parser (src/cdg) spends most of its time testing and clearing
// bits in role-value domains and arc-matrix rows, so this type exposes
// word-level access (words(), word_at()) in addition to the usual
// bit-level API.  It is deliberately simpler than std::vector<bool>:
// fixed size after construction, contiguous uint64_t storage, no
// proxy-reference tricks.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsec::util {

class ConstBitSpan;

class DynBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynBitset() = default;

  /// Constructs a bitset with `nbits` bits, all initialised to `value`.
  explicit DynBitset(std::size_t nbits, bool value = false)
      : nbits_(nbits),
        words_((nbits + kWordBits - 1) / kWordBits,
               value ? ~Word{0} : Word{0}) {
    trim();
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    assert(i < nbits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) {
    assert(i < nbits_);
    words_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    assert(i < nbits_);
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }

  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void set_all() {
    for (auto& w : words_) w = ~Word{0};
    trim();
  }

  void reset_all() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (Word w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool any() const {
    for (Word w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// True if this bitset and `other` share at least one set bit.
  bool intersects(const DynBitset& other) const {
    assert(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  DynBitset& operator&=(const DynBitset& other) {
    assert(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  DynBitset& operator|=(const DynBitset& other) {
    assert(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  bool operator==(const DynBitset& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const { return find_next_from(0); }

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next_from(std::size_t from) const {
    if (from >= nbits_) return nbits_;
    std::size_t wi = from / kWordBits;
    Word w = words_[wi] & (~Word{0} << (from % kWordBits));
    while (true) {
      if (w) {
        std::size_t bit =
            wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        return bit < nbits_ ? bit : nbits_;
      }
      if (++wi == words_.size()) return nbits_;
      w = words_[wi];
    }
  }

  /// Calls `fn(i)` for each set bit i in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      Word w = words_[wi];
      while (w) {
        std::size_t bit = wi * kWordBits +
                          static_cast<std::size_t>(std::countr_zero(w));
        fn(bit);
        w &= w - 1;
      }
    }
  }

  std::size_t word_count() const { return words_.size(); }
  Word word_at(std::size_t wi) const { return words_[wi]; }
  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

  /// Materializes a view (defined after ConstBitSpan below).
  explicit DynBitset(ConstBitSpan s);
  DynBitset& operator=(ConstBitSpan s);

 private:
  // Clears the unused high bits of the last word so count()/any() stay exact.
  void trim() {
    if (nbits_ % kWordBits != 0 && !words_.empty())
      words_.back() &= (Word{1} << (nbits_ % kWordBits)) - 1;
  }

  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

// ---------------------------------------------------------------------
// Non-owning bit spans.
//
// The constraint network's bit state lives in one arena allocation
// (cdg::NetworkArena); these views give that storage the DynBitset API
// without copying.  A span covers ceil(nbits/64) words; like DynBitset,
// the unused high bits of the last word must be kept zero (reset_all /
// copy_from maintain this) so count()/operator== stay word-granular.
// ---------------------------------------------------------------------

class ConstBitSpan {
 public:
  using Word = DynBitset::Word;
  static constexpr std::size_t kWordBits = DynBitset::kWordBits;

  ConstBitSpan() = default;
  ConstBitSpan(const Word* words, std::size_t nbits)
      : words_(words), nbits_(nbits) {}
  /// Implicit: a DynBitset is viewable wherever a span is expected.
  ConstBitSpan(const DynBitset& b) : words_(b.words()), nbits_(b.size()) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    assert(i < nbits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  std::size_t count() const {
    std::size_t c = 0;
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi)
      c += static_cast<std::size_t>(std::popcount(words_[wi]));
    return c;
  }

  bool any() const {
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi)
      if (words_[wi]) return true;
    return false;
  }

  bool none() const { return !any(); }

  bool intersects(ConstBitSpan other) const {
    assert(nbits_ == other.nbits_);
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi)
      if (words_[wi] & other.words_[wi]) return true;
    return false;
  }

  std::size_t find_first() const { return find_next_from(0); }

  std::size_t find_next_from(std::size_t from) const {
    if (from >= nbits_) return nbits_;
    std::size_t wi = from / kWordBits;
    Word w = words_[wi] & (~Word{0} << (from % kWordBits));
    const std::size_t W = word_count();
    while (true) {
      if (w) {
        std::size_t bit =
            wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        return bit < nbits_ ? bit : nbits_;
      }
      if (++wi == W) return nbits_;
      w = words_[wi];
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi) {
      Word w = words_[wi];
      while (w) {
        std::size_t bit =
            wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
        fn(bit);
        w &= w - 1;
      }
    }
  }

  std::size_t word_count() const {
    return (nbits_ + kWordBits - 1) / kWordBits;
  }
  Word word_at(std::size_t wi) const { return words_[wi]; }
  const Word* words() const { return words_; }

 protected:
  const Word* words_ = nullptr;
  std::size_t nbits_ = 0;
};

inline bool operator==(ConstBitSpan a, ConstBitSpan b) {
  if (a.size() != b.size()) return false;
  const std::size_t W = a.word_count();
  for (std::size_t wi = 0; wi < W; ++wi)
    if (a.word_at(wi) != b.word_at(wi)) return false;
  return true;
}

class BitSpan : public ConstBitSpan {
 public:
  BitSpan() = default;
  BitSpan(Word* words, std::size_t nbits)
      : ConstBitSpan(words, nbits), mut_(words) {}

  void set(std::size_t i) {
    assert(i < nbits_);
    mut_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    assert(i < nbits_);
    mut_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }

  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void set_all() {
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi) mut_[wi] = ~Word{0};
    trim();
  }

  void reset_all() {
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi) mut_[wi] = 0;
  }

  /// Sets bits [lo, hi) word-wise (whole interior words in one store).
  void set_run(std::size_t lo, std::size_t hi) {
    assert(lo <= hi && hi <= nbits_);
    if (lo >= hi) return;
    const std::size_t wl = lo / kWordBits;
    const std::size_t wh = (hi - 1) / kWordBits;
    const Word first = ~Word{0} << (lo % kWordBits);
    const Word last =
        ~Word{0} >> (kWordBits - 1 - ((hi - 1) % kWordBits));
    if (wl == wh) {
      mut_[wl] |= first & last;
      return;
    }
    mut_[wl] |= first;
    for (std::size_t wi = wl + 1; wi < wh; ++wi) mut_[wi] = ~Word{0};
    mut_[wh] |= last;
  }

  /// Word-wise copy from an equal-sized source.
  void copy_from(ConstBitSpan src) {
    assert(src.size() == nbits_);
    const std::size_t W = word_count();
    for (std::size_t wi = 0; wi < W; ++wi) mut_[wi] = src.word_at(wi);
  }

  using ConstBitSpan::words;
  Word* words() { return mut_; }

 private:
  void trim() {
    if (nbits_ % kWordBits != 0 && word_count() != 0)
      mut_[word_count() - 1] &= (Word{1} << (nbits_ % kWordBits)) - 1;
  }

  Word* mut_ = nullptr;
};

inline DynBitset::DynBitset(ConstBitSpan s) : DynBitset(s.size()) {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] = s.word_at(wi);
}

inline DynBitset& DynBitset::operator=(ConstBitSpan s) {
  nbits_ = s.size();
  words_.resize(s.word_count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) words_[wi] = s.word_at(wi);
  return *this;
}

}  // namespace parsec::util
