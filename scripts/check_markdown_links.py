#!/usr/bin/env python3
"""Check intra-repo links in the project's Markdown files.

Stdlib only; no network.  Verifies that

  * inline links/images  [text](target)  whose target is a relative
    path resolve to an existing file or directory (`scheme://` URLs
    are skipped — presence of a scheme is enough);
  * anchor fragments resolve to a real heading: `#section` against the
    current file, `FILE.md#section` against the target file, using
    GitHub's heading-slug rules (lowercase, punctuation stripped,
    spaces to hyphens, `-N` suffixes for duplicates);
  * bare path mentions of docs (`docs/FOO.md`, `EXPERIMENTS.md`, ...)
    inside prose or code spans resolve, so renaming a doc without
    fixing references fails CI even where no []( ) link was used.

Usage: scripts/check_markdown_links.py [root]          (default: repo root)
Exit status: 0 when every reference resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
# Doc-file mentions outside of []( ) links: `docs/TUTORIAL.md`, DESIGN.md §1 ...
DOC_MENTION = re.compile(r"\b((?:docs/)?[A-Z][A-Za-z0-9_]*\.md)\b")
SCHEME = re.compile(r"^[a-z][a-z0-9+.-]*:")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")
LINK_TEXT = re.compile(r"!?\[([^\]]*)\]\([^()\s]*\)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: link markup reduced to its text, then
    lowercase, punctuation dropped (word chars, hyphens and spaces
    survive), spaces to hyphens."""
    text = LINK_TEXT.sub(r"\1", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


_ANCHOR_CACHE: dict[Path, set[str]] = {}


def anchors_of(md: Path) -> set[str]:
    """All anchor fragments `md` defines: heading slugs (with GitHub's
    -1/-2 suffixes for repeats) plus explicit <a id=...> anchors."""
    cached = _ANCHOR_CACHE.get(md)
    if cached is not None:
        return cached
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    text = strip_code_fences(md.read_text(encoding="utf-8"))
    for line in text.splitlines():
        m = HEADING.match(line)
        if m:
            slug = slugify(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        for a in HTML_ANCHOR.finditer(line):
            anchors.add(a.group(1))
    _ANCHOR_CACHE[md] = anchors
    return anchors


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    files += sorted((root / ".github").rglob("*.md"))
    return [f for f in files if f.is_file()]


def strip_code_fences(text: str) -> str:
    # Drop fenced code blocks: command examples legitimately mention
    # paths that only exist after a build (trace.json, build/bench/...).
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def check_file(md: Path, root: Path) -> list[str]:
    errors: list[str] = []
    text = md.read_text(encoding="utf-8")
    prose = strip_code_fences(text)

    for lineno, line in enumerate(prose.splitlines(), start=1):
        for m in INLINE_LINK.finditer(line):
            target = m.group(1)
            if target.startswith("#"):
                if target[1:] not in anchors_of(md):
                    errors.append(f"{md.relative_to(root)}:{lineno}: "
                                  f"broken anchor '{target}'")
                continue
            if SCHEME.match(target):
                continue  # external URL; presence of a scheme is enough
            path, _, frag = target.partition("#")
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}:{lineno}: "
                              f"broken link target '{target}'")
            elif frag and resolved.suffix == ".md" \
                    and frag not in anchors_of(resolved):
                errors.append(f"{md.relative_to(root)}:{lineno}: "
                              f"broken anchor '{target}' "
                              f"(no heading '#{frag}' in {path})")
        for m in DOC_MENTION.finditer(line):
            mention = m.group(1)
            # Try relative to the mentioning file, then the repo root,
            # then docs/ (prose conventionally drops the docs/ prefix).
            if ((md.parent / mention).exists()
                    or (root / mention).exists()
                    or (root / "docs" / mention).exists()):
                continue
            errors.append(f"{md.relative_to(root)}:{lineno}: "
                          f"doc mention '{mention}' does not exist")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    errors: list[str] = []
    for md in files:
        errors += check_file(md, root)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken reference(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
