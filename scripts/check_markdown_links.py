#!/usr/bin/env python3
"""Check intra-repo links in the project's Markdown files.

Stdlib only; no network.  Verifies that

  * inline links/images  [text](target)  whose target is a relative
    path resolve to an existing file or directory (anchors and
    `scheme://` URLs are skipped, the latter only syntax-checked);
  * bare path mentions of docs (`docs/FOO.md`, `EXPERIMENTS.md`, ...)
    inside prose or code spans resolve, so renaming a doc without
    fixing references fails CI even where no []( ) link was used.

Usage: scripts/check_markdown_links.py [root]          (default: repo root)
Exit status: 0 when every reference resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
# Doc-file mentions outside of []( ) links: `docs/TUTORIAL.md`, DESIGN.md §1 ...
DOC_MENTION = re.compile(r"\b((?:docs/)?[A-Z][A-Za-z0-9_]*\.md)\b")
SCHEME = re.compile(r"^[a-z][a-z0-9+.-]*:")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    files += sorted((root / ".github").rglob("*.md"))
    return [f for f in files if f.is_file()]


def strip_code_fences(text: str) -> str:
    # Drop fenced code blocks: command examples legitimately mention
    # paths that only exist after a build (trace.json, build/bench/...).
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def check_file(md: Path, root: Path) -> list[str]:
    errors: list[str] = []
    text = md.read_text(encoding="utf-8")
    prose = strip_code_fences(text)

    for lineno, line in enumerate(prose.splitlines(), start=1):
        for m in INLINE_LINK.finditer(line):
            target = m.group(1)
            if target.startswith("#"):
                continue  # same-file anchor
            if SCHEME.match(target):
                continue  # external URL; presence of a scheme is enough
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}:{lineno}: "
                              f"broken link target '{target}'")
        for m in DOC_MENTION.finditer(line):
            mention = m.group(1)
            # Try relative to the mentioning file, then the repo root
            # (prose conventionally uses root-relative doc paths).
            if ((md.parent / mention).exists()
                    or (root / mention).exists()):
                continue
            errors.append(f"{md.relative_to(root)}:{lineno}: "
                          f"doc mention '{mention}' does not exist")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    errors: list[str] = []
    for md in files:
        errors += check_file(md, root)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken reference(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
