#!/usr/bin/env bash
# Chaos-test a supervised parse fleet, then A/B the straggler hedge.
#
#   scripts/run_fleet_chaos.sh [--requests R] [--qps Q] [--backend NAME]
#                              [--port-base P] [--build-dir DIR] [--out DIR]
#
# Two scenarios, both gated (nonzero exit on any violation):
#
#   1. kill -9 / hang chaos under fleet_supervisord.  Two supervised
#      shards behind a parse_router (budgeted retries + auto hedging),
#      loadgen replaying the deterministic corpus open-loop with
#      --ref-check.  Mid-run, shard 0 is SIGKILLed and shard 1 is
#      SIGSTOPped (the supervisor detects the hang via failed pings,
#      SIGKILLs it, and restarts both).  Gate: zero failed requests,
#      zero duplicated executions (idempotency-key echo mismatches),
#      zero bit-identity mismatches, and the supervisor actually
#      restarted >= 2 shards — i.e. the chaos fired.
#
#   2. Straggler hedge A/B.  Two unsupervised shards, one poisoned
#      with bench/plans/straggler.plan (injected engine latency makes
#      it answer correctly but slowly).  The same load runs once with
#      hedging off and once with a fixed hedge delay; the hedged run's
#      p99 must beat the unhedged run's.
#
# Artifacts land in --out: CHAOS_fleet.json (loadgen --chaos-out
# before/during/after phase split), BENCH_resilience.json (the
# repo-root resilience bench merged with both scenarios' numbers),
# fleet/router/shard logs and metrics.  This script IS the CI
# fleet-chaos-smoke job and the docs/ROBUSTNESS.md fleet walkthrough —
# keep the three in lockstep.
set -euo pipefail

REQUESTS=180
QPS=12
BACKEND=maspar
PORT_BASE=9600
BUILD_DIR=build
OUT=chaos-out

while [[ $# -gt 0 ]]; do
  case "$1" in
    --requests) REQUESTS=$2; shift 2 ;;
    --qps) QPS=$2; shift 2 ;;
    --backend) BACKEND=$2; shift 2 ;;
    --port-base) PORT_BASE=$2; shift 2 ;;
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    *) echo "usage: $0 [--requests R] [--qps Q] [--backend NAME]" \
            "[--port-base P] [--build-dir DIR] [--out DIR]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$BUILD_DIR/src"
mkdir -p "$OUT"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_for_line() {  # $1 = logfile, $2 = grep pattern
  for _ in $(seq 1 150); do
    if grep -q "$2" "$1" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for '$2' in $1" >&2
  cat "$1" >&2 || true
  return 1
}

router_port() {  # $1 = router logfile
  sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$1"
}

shard_pid() {  # $1 = fleet logfile, $2 = shard index; latest generation wins
  grep -oP "shard $2: up \(pid \K[0-9]+" "$1" | tail -1
}

# ---------------------------------------------------------------- 1 --
echo "== scenario 1: kill -9 + hang under the supervisor =="

"$BIN/fleet_supervisord" --shards 2 --port-base "$PORT_BASE" \
  --ping-interval-ms 100 --ping-timeout-ms 300 --hang-pings 2 \
  --backoff-base-ms 50 --backoff-max-ms 500 \
  --metrics-out "$OUT/fleet_metrics.prom" \
  > "$OUT/fleet.log" 2>&1 &
SUP_PID=$!
PIDS+=($SUP_PID)
wait_for_line "$OUT/fleet.log" "^supervising 2 shards"

"$BIN/parse_router" \
  --shard "127.0.0.1:$PORT_BASE" --shard "127.0.0.1:$((PORT_BASE + 1))" \
  --hedge-ms 0 --attempt-timeout-ms 2000 --backoff-base-ms 10 \
  --metrics-out "$OUT/router_metrics.prom" \
  > "$OUT/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=($ROUTER_PID)
wait_for_line "$OUT/router.log" "^listening on "
ROUTER_PORT=$(router_port "$OUT/router.log")
echo "router: 127.0.0.1:$ROUTER_PORT"

# Open-loop load in the background; the chaos lands mid-run so the
# --chaos-out before/during/after phases mean what they say.
rc=0
"$BIN/loadgen" --connect "127.0.0.1:$ROUTER_PORT" \
  --requests "$REQUESTS" --qps "$QPS" --backend "$BACKEND" \
  --ref-check --timeout-ms 15000 \
  --chaos-out "$OUT/CHAOS_fleet.json" --json "$OUT/BENCH_fleet_chaos.json" \
  > "$OUT/loadgen.log" 2>&1 &
LOAD_PID=$!

DURATION=$((REQUESTS / QPS))
sleep "$((DURATION / 4))"
PID0=$(shard_pid "$OUT/fleet.log" 0)
echo "chaos: kill -9 shard 0 (pid $PID0)"
kill -9 "$PID0"

sleep "$((DURATION / 4))"
PID1=$(shard_pid "$OUT/fleet.log" 1)
echo "chaos: SIGSTOP shard 1 (pid $PID1) — supervisor must hang-kill it"
kill -STOP "$PID1"

wait "$LOAD_PID" || rc=$?
cat "$OUT/loadgen.log"

# Drain the fleet so the supervisor prints its final restart tally.
kill -TERM "$ROUTER_PID" "$SUP_PID" 2>/dev/null || true
wait "$ROUTER_PID" 2>/dev/null || true
wait "$SUP_PID" 2>/dev/null || true
PIDS=()

if [[ "$rc" -ne 0 ]]; then
  echo "FAIL: loadgen exited $rc under chaos" >&2
  exit 1
fi

python3 - "$OUT/CHAOS_fleet.json" "$OUT/fleet.log" <<'EOF'
import json, re, sys
d = json.load(open(sys.argv[1]))
assert d['failed'] == 0, f"lost requests under chaos: {d['failed']}"
assert d['duplicates'] == 0, \
    f"duplicated executions (key-echo mismatch): {d['duplicates']}"
assert d['ref_mismatches'] == 0, 'bit-identity broken across restarts'
assert d['ok'] == d['requests'], (d['ok'], d['requests'])
tally = re.search(r'supervised 2 shards: (\d+) restarts, (\d+) hang kills',
                  open(sys.argv[2]).read())
assert tally, 'supervisor never printed its final tally'
restarts, hang_kills = int(tally.group(1)), int(tally.group(2))
assert restarts >= 2, f'chaos did not fire: only {restarts} restarts'
assert hang_kills >= 1, 'SIGSTOPped shard was never hang-killed'
p = d['phases']
print(f"chaos gate ok: {d['ok']}/{d['requests']} requests, "
      f"{restarts} restarts ({hang_kills} hang kills); goodput "
      f"before/during/after = {p['before']['goodput_rps']:.1f}/"
      f"{p['during']['goodput_rps']:.1f}/{p['after']['goodput_rps']:.1f} rps")
EOF

# ---------------------------------------------------------------- 2 --
echo
echo "== scenario 2: straggler hedge A/B =="

"$BIN/parse_serverd" --port "$((PORT_BASE + 10))" \
  > "$OUT/shard_clean.log" 2>&1 &
PIDS+=($!)
"$BIN/parse_serverd" --port "$((PORT_BASE + 11))" \
  --fault-plan "$ROOT/bench/plans/straggler.plan" \
  > "$OUT/shard_straggler.log" 2>&1 &
PIDS+=($!)
wait_for_line "$OUT/shard_clean.log" "^listening on "
wait_for_line "$OUT/shard_straggler.log" "^listening on "

SHARDS=(--shard "127.0.0.1:$((PORT_BASE + 10))"
        --shard "127.0.0.1:$((PORT_BASE + 11))")

run_ab() {  # $1 = hedge-ms, $2 = loadgen seed, $3 = json out
  "$BIN/parse_router" "${SHARDS[@]}" --route-by sentence --hedge-ms "$1" \
    > "$OUT/router_ab.log" 2>&1 &
  local router=$!
  wait_for_line "$OUT/router_ab.log" "^listening on "
  local port
  port=$(router_port "$OUT/router_ab.log")
  # Distinct seeds per leg: same seed would replay the same
  # idempotency keys and the second leg would be answered from the
  # shards' single-flight caches instead of being parsed.
  "$BIN/loadgen" --connect "127.0.0.1:$port" --requests 60 --qps 10 \
    --seed "$2" --backend "$BACKEND" --json "$3"
  kill -TERM "$router" 2>/dev/null || true
  wait "$router" 2>/dev/null || true
}

run_ab -1 11 "$OUT/BENCH_hedge_off.json"
run_ab 60 22 "$OUT/BENCH_hedge_on.json"

cleanup
trap - EXIT
PIDS=()

# Gate the A/B and merge everything into the resilience bench file.
python3 - "$OUT" "$ROOT" <<'EOF'
import json, os, sys
out, root = sys.argv[1], sys.argv[2]
off = json.load(open(os.path.join(out, 'BENCH_hedge_off.json')))
on = json.load(open(os.path.join(out, 'BENCH_hedge_on.json')))
p99_off, p99_on = off['latency_ms']['p99'], on['latency_ms']['p99']
assert on['failed'] == 0 and off['failed'] == 0
assert on['hedges']['fired'] > 0, 'hedge never fired against the straggler'
assert p99_on < p99_off, \
    f'hedging did not cut p99: {p99_on:.1f}ms vs {p99_off:.1f}ms'
print(f"hedge gate ok: p99 {p99_off:.1f}ms -> {p99_on:.1f}ms "
      f"({100 * (1 - p99_on / p99_off):.0f}% cut), "
      f"{on['hedges']['fired']} hedges fired, {on['hedges']['won']} won")

merged = {}
committed = os.path.join(root, 'BENCH_resilience.json')
if os.path.exists(committed):
    merged = json.load(open(committed))
merged['fleet'] = json.load(open(os.path.join(out, 'CHAOS_fleet.json')))
merged['hedge'] = {
    'straggler_plan': 'bench/plans/straggler.plan',
    'off': {'p50_ms': off['latency_ms']['p50'], 'p99_ms': p99_off},
    'on': {'p50_ms': on['latency_ms']['p50'], 'p99_ms': p99_on,
           'hedges': on['hedges']},
    'p99_cut': round(1 - p99_on / p99_off, 4),
}
with open(os.path.join(out, 'BENCH_resilience.json'), 'w') as f:
    json.dump(merged, f, indent=1)
    f.write('\n')
EOF

echo
echo "chaos artifacts in $OUT/ (CHAOS_fleet.json, BENCH_resilience.json," \
     "fleet/router/shard logs + metrics)"
