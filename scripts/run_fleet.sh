#!/usr/bin/env bash
# Bring up a local parse fleet, drive it with loadgen, drain it, and
# analyze the per-shard observability artifacts.
#
#   scripts/run_fleet.sh [--shards N] [--requests R] [--qps Q]
#                        [--backend NAME] [--build-dir DIR] [--out DIR]
#
# Topology: N parse_serverd shards on ephemeral loopback ports, one
# parse_router hashing requests across them, one loadgen replaying the
# deterministic corpus open-loop at Q qps with --ref-check (every Ok
# response must be bit-identical to the in-process serial reference).
# SIGTERM drains the fleet; each process flushes trace.json +
# metrics.prom on the way down, and parsec_analyze ingests the whole
# fleet's artifacts into one report.
#
# This script IS the walkthrough in docs/SERVING.md and the CI
# fleet-smoke job — keep the three in lockstep.  Exit status is
# loadgen's (nonzero on any failed request or bit-identity mismatch).
set -euo pipefail

SHARDS=4
REQUESTS=200
QPS=100
BACKEND=maspar
BUILD_DIR=build
OUT=fleet-out

while [[ $# -gt 0 ]]; do
  case "$1" in
    --shards) SHARDS=$2; shift 2 ;;
    --requests) REQUESTS=$2; shift 2 ;;
    --qps) QPS=$2; shift 2 ;;
    --backend) BACKEND=$2; shift 2 ;;
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    *) echo "usage: $0 [--shards N] [--requests R] [--qps Q]" \
            "[--backend NAME] [--build-dir DIR] [--out DIR]" >&2; exit 2 ;;
  esac
done

BIN="$BUILD_DIR/src"
mkdir -p "$OUT"
PIDS=()

cleanup() {
  # Drain everything still running (TERM = graceful: finish in-flight,
  # flush artifacts), then wait so the artifacts are complete.
  for pid in "${PIDS[@]:-}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_for_port() {  # $1 = logfile; echoes the bound port
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$1")
    if [[ -n "$port" ]]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2
  return 1
}

# 1. Shards: one parse_serverd per shard, ephemeral ports, per-shard
#    trace/metrics artifacts.
SHARD_ARGS=()
ANALYZE_ARGS=()
for i in $(seq 0 $((SHARDS - 1))); do
  "$BIN/parse_serverd" --shard-id "$i" \
    --trace-out "$OUT/shard_${i}_trace.json" \
    --metrics-out "$OUT/shard_${i}_metrics.prom" \
    > "$OUT/shard_${i}.log" 2>&1 &
  PIDS+=($!)
done
for i in $(seq 0 $((SHARDS - 1))); do
  port=$(wait_for_port "$OUT/shard_${i}.log")
  SHARD_ARGS+=(--shard "127.0.0.1:$port")
  ANALYZE_ARGS+=(--trace "$OUT/shard_${i}_trace.json"
                 --metrics "$OUT/shard_${i}_metrics.prom")
  echo "shard $i: 127.0.0.1:$port"
done

# 2. Router in front of them.
"$BIN/parse_router" "${SHARD_ARGS[@]}" \
  --trace-out "$OUT/router_trace.json" \
  --metrics-out "$OUT/router_metrics.prom" \
  > "$OUT/router.log" 2>&1 &
PIDS+=($!)
ROUTER_PORT=$(wait_for_port "$OUT/router.log")
echo "router: 127.0.0.1:$ROUTER_PORT"

# 3. Load: open-loop replay with the fleet bit-identity gate.
rc=0
"$BIN/loadgen" --connect "127.0.0.1:$ROUTER_PORT" \
  --requests "$REQUESTS" --qps "$QPS" --backend "$BACKEND" \
  --ref-check --json "$OUT/BENCH_fleet.json" || rc=$?

# 4. Graceful drain (flushes every artifact), then analyze the fleet.
cleanup
trap - EXIT
PIDS=()

"$BIN/parsec_analyze" "${ANALYZE_ARGS[@]}" \
  --trace "$OUT/router_trace.json" --metrics "$OUT/router_metrics.prom" \
  --report-md "$OUT/FLEET_report.md"

echo
echo "fleet artifacts in $OUT/ (BENCH_fleet.json, FLEET_report.md," \
     "per-shard trace/metrics)"
exit "$rc"
